package dataset

import (
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	good := []*Column{
		catCol("a", []int64{0, 1, 0}, 2),
		numCol("b", []int64{5, 6, 7}, 0, 10),
	}
	tab, err := NewTable("t", good)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 2 {
		t.Fatalf("got %d rows %d cols, want 3 and 2", tab.NumRows(), tab.NumCols())
	}

	if _, err := NewTable("t", nil); err == nil {
		t.Error("NewTable with no columns should fail")
	}
	ragged := []*Column{
		catCol("a", []int64{0, 1}, 2),
		catCol("b", []int64{0}, 2),
	}
	if _, err := NewTable("t", ragged); err == nil {
		t.Error("NewTable with ragged columns should fail")
	}
	dup := []*Column{
		catCol("a", []int64{0}, 2),
		catCol("a", []int64{1}, 2),
	}
	if _, err := NewTable("t", dup); err == nil {
		t.Error("NewTable with duplicate names should fail")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := MustNewTable("t", []*Column{
		catCol("x", []int64{1, 2}, 3),
		numCol("y", []int64{9, 8}, 0, 10),
	})
	if c := tab.Column("x"); c == nil || c.Name != "x" {
		t.Fatalf("Column(x) = %v", c)
	}
	if c := tab.Column("missing"); c != nil {
		t.Fatalf("Column(missing) = %v, want nil", c)
	}
	if i, ok := tab.ColumnIndex("y"); !ok || i != 1 {
		t.Fatalf("ColumnIndex(y) = %d,%v", i, ok)
	}
}

func TestRowMaterialisation(t *testing.T) {
	tab := MustNewTable("t", []*Column{
		catCol("x", []int64{1, 2}, 3),
		numCol("y", []int64{9, 8}, 0, 10),
	})
	row := tab.Row(1)
	if len(row) != 2 || row[0] != 2 || row[1] != 8 {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestColumnDistinctAndDomainWidth(t *testing.T) {
	c := catCol("c", []int64{0, 0, 1, 2, 2, 2}, 5)
	if d := c.Distinct(); d != 3 {
		t.Errorf("Distinct = %d, want 3", d)
	}
	if w := c.DomainWidth(); w != 5 {
		t.Errorf("DomainWidth = %d, want 5", w)
	}
	nc := numCol("n", []int64{3, 4}, 2, 9)
	if w := nc.DomainWidth(); w != 8 {
		t.Errorf("numeric DomainWidth = %d, want 8", w)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	tab, err := GenerateCensus(GenConfig{Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds := []Predicate{
		{Col: "age", Op: OpRange, Lo: 20, Hi: 50},
		{Col: "sex", Op: OpEq, Lo: 1},
	}
	got, err := tab.Count(preds)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	age := tab.Column("age").Values
	sex := tab.Column("sex").Values
	for i := 0; i < tab.NumRows(); i++ {
		if age[i] >= 20 && age[i] <= 50 && sex[i] == 1 {
			want++
		}
	}
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestCountEmptyPredicates(t *testing.T) {
	tab := MustNewTable("t", []*Column{catCol("x", []int64{0, 1, 2}, 3)})
	n, err := tab.Count(nil)
	if err != nil || n != 3 {
		t.Fatalf("Count(nil) = %d, %v; want 3, nil", n, err)
	}
}

func TestCountUnknownColumn(t *testing.T) {
	tab := MustNewTable("t", []*Column{catCol("x", []int64{0}, 3)})
	if _, err := tab.Count([]Predicate{{Col: "nope", Op: OpEq, Lo: 0}}); err == nil {
		t.Fatal("expected error for unknown column")
	}
	if _, err := tab.MatchingRows([]Predicate{{Col: "nope", Op: OpEq, Lo: 0}}); err == nil {
		t.Fatal("expected error for unknown column in MatchingRows")
	}
}

func TestSelectivityBounds(t *testing.T) {
	tab, err := GenerateDMV(GenConfig{Rows: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tab.Selectivity([]Predicate{{Col: "state", Op: OpEq, Lo: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0 || sel > 1 {
		t.Fatalf("selectivity %v out of [0,1]", sel)
	}
}

// Property: Count over a full-domain range predicate equals the table size.
func TestFullRangeCountsEverything(t *testing.T) {
	tab, err := GenerateForest(GenConfig{Rows: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tab.Cols {
		n, err := tab.Count([]Predicate{{Col: c.Name, Op: OpRange, Lo: c.Min, Hi: c.Max}})
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(tab.NumRows()) {
			t.Fatalf("full-range count on %s = %d, want %d", c.Name, n, tab.NumRows())
		}
	}
}

// Property: conjunction is monotone — adding predicates never increases count.
func TestConjunctionMonotonicity(t *testing.T) {
	tab, err := GeneratePower(GenConfig{Rows: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f := func(lo1, w1, lo2, w2 uint16) bool {
		c1 := tab.Cols[0]
		c2 := tab.Cols[2]
		p1 := Predicate{Col: c1.Name, Op: OpRange,
			Lo: c1.Min + int64(lo1)%c1.DomainWidth(),
		}
		p1.Hi = p1.Lo + int64(w1)%(c1.Max-p1.Lo+1)
		p2 := Predicate{Col: c2.Name, Op: OpRange,
			Lo: c2.Min + int64(lo2)%c2.DomainWidth(),
		}
		p2.Hi = p2.Lo + int64(w2)%(c2.Max-p2.Lo+1)
		n1, err1 := tab.Count([]Predicate{p1})
		n12, err2 := tab.Count([]Predicate{p1, p2})
		return err1 == nil && err2 == nil && n12 <= n1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := GenerateDMV(GenConfig{Rows: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDMV(GenConfig{Rows: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.Cols {
		for ri := range a.Cols[ci].Values {
			if a.Cols[ci].Values[ri] != b.Cols[ci].Values[ri] {
				t.Fatalf("generation not deterministic at col %d row %d", ci, ri)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name string
		gen  func(GenConfig) (*Table, error)
		cols int
	}{
		{"dmv", GenerateDMV, 11},
		{"census", GenerateCensus, 10},
		{"forest", GenerateForest, 10},
		{"power", GeneratePower, 7},
	}
	for _, tc := range cases {
		tab, err := tc.gen(GenConfig{Rows: 250, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tab.NumCols() != tc.cols {
			t.Errorf("%s: got %d cols, want %d", tc.name, tab.NumCols(), tc.cols)
		}
		if tab.NumRows() != 250 {
			t.Errorf("%s: got %d rows, want 250", tc.name, tab.NumRows())
		}
		for _, c := range tab.Cols {
			for _, v := range c.Values {
				lo, hi := c.Min, c.Max
				if c.Type == Categorical {
					lo, hi = 0, c.DomainSize-1
				}
				if v < lo || v > hi {
					t.Fatalf("%s.%s value %d outside [%d,%d]", tc.name, c.Name, v, lo, hi)
				}
			}
		}
	}
}

func TestGenConfigValidation(t *testing.T) {
	if _, err := GenerateDMV(GenConfig{Rows: 0}); err == nil {
		t.Fatal("Rows=0 should fail validation")
	}
	if _, err := GenerateDSB(GenConfig{Rows: -5}); err == nil {
		t.Fatal("negative Rows should fail validation")
	}
}

func TestDMVSkewPresent(t *testing.T) {
	tab, err := GenerateDMV(GenConfig{Rows: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Zipf skew: the most frequent record_type should dominate.
	counts := map[int64]int{}
	for _, v := range tab.Column("record_type").Values {
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/5000 < 0.2 {
		t.Errorf("expected skewed marginal, top frequency fraction = %v", float64(max)/5000)
	}
}

func TestOpAndTypeStrings(t *testing.T) {
	if OpEq.String() != "=" || OpRange.String() != "between" {
		t.Error("Op.String mismatch")
	}
	if Op(99).String() == "" || ColumnType(99).String() == "" {
		t.Error("unknown enum String should be non-empty")
	}
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Error("ColumnType.String mismatch")
	}
	p := Predicate{Col: "c", Op: OpRange, Lo: 1, Hi: 5}
	if p.String() == "" || (Predicate{Col: "c", Op: OpEq, Lo: 3}).String() == "" {
		t.Error("Predicate.String should be non-empty")
	}
}

func TestPredicateMatches(t *testing.T) {
	eq := Predicate{Op: OpEq, Lo: 5}
	if !eq.Matches(5) || eq.Matches(4) {
		t.Error("OpEq.Matches wrong")
	}
	rg := Predicate{Op: OpRange, Lo: 2, Hi: 4}
	if !rg.Matches(2) || !rg.Matches(4) || rg.Matches(1) || rg.Matches(5) {
		t.Error("OpRange.Matches wrong")
	}
}

func TestSelectRows(t *testing.T) {
	tab, err := GenerateCensus(GenConfig{Rows: 100, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	sub := tab.SelectRows([]int{5, 10, 99})
	if sub.NumRows() != 3 || sub.NumCols() != tab.NumCols() {
		t.Fatalf("SelectRows shape %dx%d", sub.NumRows(), sub.NumCols())
	}
	for ci := range tab.Cols {
		if sub.Cols[ci].Values[0] != tab.Cols[ci].Values[5] ||
			sub.Cols[ci].Values[2] != tab.Cols[ci].Values[99] {
			t.Fatal("SelectRows copied wrong values")
		}
	}
	// Mutating the subset must not affect the original.
	orig := tab.Cols[0].Values[5]
	sub.Cols[0].Values[0] = orig + 1
	if tab.Cols[0].Values[5] != orig {
		t.Fatal("SelectRows shares storage with the original table")
	}
}

func TestGenerateCorrelated(t *testing.T) {
	for _, rho := range []float64{0, 0.9} {
		tab, err := GenerateCorrelated(GenConfig{Rows: 4000, Seed: 1}, 2, rho)
		if err != nil {
			t.Fatal(err)
		}
		if tab.NumCols() != 4 {
			t.Fatalf("cols = %d", tab.NumCols())
		}
		// Measure dependence: P(b0 = f(a0)) should be ~rho + chance.
		a := tab.Column("a0").Values
		b := tab.Column("b0").Values
		match := 0
		for i := range a {
			if b[i] == (a[i]*2654435761+17)%24 {
				match++
			}
		}
		frac := float64(match) / 4000
		if rho == 0 && frac > 0.2 {
			t.Errorf("rho=0: dependence fraction %v too high", frac)
		}
		if rho == 0.9 && frac < 0.8 {
			t.Errorf("rho=0.9: dependence fraction %v too low", frac)
		}
	}
	if _, err := GenerateCorrelated(GenConfig{Rows: 10, Seed: 1}, 0, 0.5); err == nil {
		t.Fatal("pairs=0 should fail")
	}
	if _, err := GenerateCorrelated(GenConfig{Rows: 10, Seed: 1}, 1, 2); err == nil {
		t.Fatal("rho>1 should fail")
	}
}

func TestCountParallelMatchesSequential(t *testing.T) {
	// Above the parallel threshold, Count fans out; the result must match a
	// brute-force scan exactly.
	tab, err := GenerateDMV(GenConfig{Rows: parallelThreshold + 1000, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	preds := []Predicate{
		{Col: "state", Op: OpEq, Lo: 2},
		{Col: "model_year", Op: OpRange, Lo: 30, Hi: 100},
	}
	got, err := tab.Count(preds)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := tab.compile(preds)
	if err != nil {
		t.Fatal(err)
	}
	want := countChunk(bounds, 0, tab.NumRows())
	if got != want {
		t.Fatalf("parallel count %d != sequential %d", got, want)
	}
}
