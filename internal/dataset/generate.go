package dataset

import (
	"fmt"
	"math/rand"
)

// GenConfig controls synthetic single-table generation.
type GenConfig struct {
	// Rows is the number of tuples to generate.
	Rows int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.Rows <= 0 {
		return fmt.Errorf("dataset: Rows must be positive, got %d", c.Rows)
	}
	return nil
}

// zipfCodes draws n categorical codes from a Zipf(s) distribution over
// [0, domain). s > 1 controls skew; larger s is more skewed.
func zipfCodes(r *rand.Rand, n int, domain int64, s float64) []int64 {
	z := rand.NewZipf(r, s, 1, uint64(domain-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// uniformCodes draws n codes uniformly over [0, domain).
func uniformCodes(r *rand.Rand, n int, domain int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63n(domain)
	}
	return out
}

// correlate derives a column from base: with probability fidelity each value
// is a deterministic function of the base value (modular hash into the target
// domain); otherwise it is drawn uniformly. High fidelity produces the strong
// inter-column correlations that make learned estimators err — the
// heteroscedasticity the locally weighted conformal method exploits.
func correlate(r *rand.Rand, base []int64, domain int64, fidelity float64) []int64 {
	out := make([]int64, len(base))
	for i, b := range base {
		if r.Float64() < fidelity {
			out[i] = (b*2654435761 + 17) % domain
			if out[i] < 0 {
				out[i] += domain
			}
		} else {
			out[i] = r.Int63n(domain)
		}
	}
	return out
}

// gaussianInts draws n integers from a clipped Gaussian over [0, max].
func gaussianInts(r *rand.Rand, n int, mean, stddev float64, max int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		v := int64(r.NormFloat64()*stddev + mean)
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		out[i] = v
	}
	return out
}

// catCol builds a categorical column descriptor.
func catCol(name string, values []int64, domain int64) *Column {
	return &Column{Name: name, Type: Categorical, Values: values, DomainSize: domain, Max: domain - 1}
}

// numCol builds a numeric column descriptor.
func numCol(name string, values []int64, min, max int64) *Column {
	return &Column{Name: name, Type: Numeric, Values: values, Min: min, Max: max}
}

// GenerateDMV synthesises a table with the shape of the DMV vehicle
// registration dataset: 11 columns of which 10 are categorical, with strongly
// Zipf-skewed marginals and several highly correlated column pairs
// (e.g. body type determined largely by vehicle class).
func GenerateDMV(cfg GenConfig) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	record := zipfCodes(r, n, 60, 1.4)         // record_type-like hub column
	regClass := correlate(r, record, 40, 0.85) // registration class follows record type
	state := zipfCodes(r, n, 50, 1.2)
	county := correlate(r, state, 62, 0.9) // county follows state
	bodyType := zipfCodes(r, n, 30, 1.6)
	fuel := correlate(r, bodyType, 9, 0.8) // fuel type follows body type
	color := zipfCodes(r, n, 20, 1.1)
	scofflaw := uniformCodes(r, n, 2)
	suspend := correlate(r, scofflaw, 2, 0.7)
	revoked := uniformCodes(r, n, 2)
	modelYear := gaussianInts(r, n, 70, 18, 119) // numeric: 120 model years

	cols := []*Column{
		catCol("record_type", record, 60),
		catCol("reg_class", regClass, 40),
		catCol("state", state, 50),
		catCol("county", county, 62),
		catCol("body_type", bodyType, 30),
		catCol("fuel_type", fuel, 9),
		catCol("color", color, 20),
		catCol("scofflaw", scofflaw, 2),
		catCol("suspension", suspend, 2),
		catCol("revoked", revoked, 2),
		numCol("model_year", modelYear, 0, 119),
	}
	return NewTable("dmv", cols)
}

// GenerateCensus synthesises a Census-income-like table: mixed categorical and
// numeric columns with moderate skew and education/occupation correlation.
func GenerateCensus(cfg GenConfig) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	age := gaussianInts(r, n, 40, 14, 90)
	workclass := zipfCodes(r, n, 9, 1.5)
	education := zipfCodes(r, n, 16, 1.3)
	occupation := correlate(r, education, 15, 0.75)
	marital := zipfCodes(r, n, 7, 1.2)
	relationship := correlate(r, marital, 6, 0.8)
	race := zipfCodes(r, n, 5, 1.8)
	sex := uniformCodes(r, n, 2)
	hours := gaussianInts(r, n, 40, 12, 99)
	country := zipfCodes(r, n, 42, 2.0)

	cols := []*Column{
		numCol("age", age, 0, 90),
		catCol("workclass", workclass, 9),
		catCol("education", education, 16),
		catCol("occupation", occupation, 15),
		catCol("marital_status", marital, 7),
		catCol("relationship", relationship, 6),
		catCol("race", race, 5),
		catCol("sex", sex, 2),
		numCol("hours_per_week", hours, 0, 99),
		catCol("native_country", country, 42),
	}
	return NewTable("census", cols)
}

// GenerateForest synthesises a Forest-cover-like table: 10 numeric columns
// over moderately wide ordered domains, with elevation-driven correlations.
func GenerateForest(cfg GenConfig) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	elev := gaussianInts(r, n, 500, 140, 999)
	aspect := uniformCodes(r, n, 360)
	slope := gaussianInts(r, n, 15, 8, 66)
	// Hydrology distances correlate with elevation.
	hDist := make([]int64, n)
	vDist := make([]int64, n)
	for i := range hDist {
		hDist[i] = clampI64(elev[i]/2+int64(r.NormFloat64()*60), 0, 999)
		vDist[i] = clampI64(elev[i]/4+int64(r.NormFloat64()*40), 0, 700)
	}
	road := gaussianInts(r, n, 400, 180, 999)
	shade9 := gaussianInts(r, n, 212, 30, 254)
	shadeNoon := gaussianInts(r, n, 223, 25, 254)
	shade3 := gaussianInts(r, n, 142, 35, 254)
	fire := gaussianInts(r, n, 300, 160, 999)

	cols := []*Column{
		numCol("elevation", elev, 0, 999),
		numCol("aspect", aspect, 0, 359),
		numCol("slope", slope, 0, 66),
		numCol("horiz_dist_hydro", hDist, 0, 999),
		numCol("vert_dist_hydro", vDist, 0, 700),
		numCol("horiz_dist_road", road, 0, 999),
		numCol("hillshade_9am", shade9, 0, 254),
		numCol("hillshade_noon", shadeNoon, 0, 254),
		numCol("hillshade_3pm", shade3, 0, 254),
		numCol("horiz_dist_fire", fire, 0, 999),
	}
	return NewTable("forest", cols)
}

// GeneratePower synthesises a household-power-consumption-like table:
// 7 numeric columns (discretised continuous measurements) with strong
// correlation between global active power and sub-meterings.
func GeneratePower(cfg GenConfig) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	active := gaussianInts(r, n, 300, 150, 999)
	reactive := make([]int64, n)
	voltage := gaussianInts(r, n, 500, 40, 999)
	intensity := make([]int64, n)
	sub1 := make([]int64, n)
	sub2 := make([]int64, n)
	sub3 := make([]int64, n)
	for i := range active {
		reactive[i] = clampI64(active[i]/5+int64(r.NormFloat64()*25), 0, 400)
		intensity[i] = clampI64(active[i]/2+int64(r.NormFloat64()*30), 0, 600)
		sub1[i] = clampI64(active[i]/8+int64(r.NormFloat64()*15), 0, 200)
		sub2[i] = clampI64(active[i]/6+int64(r.NormFloat64()*20), 0, 250)
		sub3[i] = clampI64(active[i]/3+int64(r.NormFloat64()*35), 0, 500)
	}

	cols := []*Column{
		numCol("global_active_power", active, 0, 999),
		numCol("global_reactive_power", reactive, 0, 400),
		numCol("voltage", voltage, 0, 999),
		numCol("global_intensity", intensity, 0, 600),
		numCol("sub_metering_1", sub1, 0, 200),
		numCol("sub_metering_2", sub2, 0, 250),
		numCol("sub_metering_3", sub3, 0, 500),
	}
	return NewTable("power", cols)
}

// GenerateCorrelated synthesises a table of categorical column pairs with a
// tunable dependence strength rho in [0, 1]: each even column is Zipf-skewed
// and the following column equals a deterministic function of it with
// probability rho (uniform otherwise). rho = 0 gives fully independent
// columns; rho = 1 makes each pair functionally dependent. Used by the
// correlation ablation to measure how estimator error — and hence prediction
// interval width — grows with inter-column correlation.
func GenerateCorrelated(cfg GenConfig, pairs int, rho float64) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pairs <= 0 {
		return nil, fmt.Errorf("dataset: pairs must be positive, got %d", pairs)
	}
	if rho < 0 || rho > 1 {
		return nil, fmt.Errorf("dataset: rho must be in [0,1], got %v", rho)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows
	var cols []*Column
	for p := 0; p < pairs; p++ {
		const domain = 24
		base := zipfCodes(r, n, domain, 1.3)
		dep := correlate(r, base, domain, rho)
		cols = append(cols,
			catCol(fmt.Sprintf("a%d", p), base, domain),
			catCol(fmt.Sprintf("b%d", p), dep, domain),
		)
	}
	return NewTable("correlated", cols)
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
