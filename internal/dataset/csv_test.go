package dataset

import (
	"strings"
	"testing"
)

const sampleCSV = `city,population,region
springfield,30000,midwest
shelbyville,21000,midwest
ogdenville,9000,west
springfield,30000,midwest
capital_city,150000,east
`

func TestFromCSV(t *testing.T) {
	tab, err := FromCSV("cities", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 || tab.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	city := tab.Column("city")
	if city.Type != Categorical || city.DomainSize != 4 {
		t.Fatalf("city column = %+v", city)
	}
	// Dictionary order follows first appearance.
	if v, ok := city.Value(0); !ok || v != "springfield" {
		t.Fatalf("Value(0) = %q, %v", v, ok)
	}
	if code, ok := city.Code("capital_city"); !ok || code != 3 {
		t.Fatalf("Code(capital_city) = %d, %v", code, ok)
	}
	if _, ok := city.Code("nowhere"); ok {
		t.Fatal("unknown value should not resolve")
	}
	pop := tab.Column("population")
	if pop.Type != Numeric || pop.Min != 9000 || pop.Max != 150000 {
		t.Fatalf("population column = %+v", pop)
	}
	// Duplicate rows share codes.
	if city.Values[0] != city.Values[3] {
		t.Fatal("duplicate values got different codes")
	}
	// Counting works end to end.
	n, err := tab.Count([]Predicate{{Col: "region", Op: OpEq, Lo: mustCode(t, tab, "region", "midwest")}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("midwest count = %d, want 3", n)
	}
}

func mustCode(t *testing.T, tab *Table, col, val string) int64 {
	t.Helper()
	code, ok := tab.Column(col).Code(val)
	if !ok {
		t.Fatalf("no code for %s=%q", col, val)
	}
	return code
}

func TestFromCSVErrors(t *testing.T) {
	cases := []string{
		"",          // no header
		"a,b\n",     // no data rows
		"a,b\n1\n",  // ragged
		"a,b\n1,\n", // empty value
	}
	for i, c := range cases {
		if _, err := FromCSV("t", strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestColumnValueWithoutDict(t *testing.T) {
	c := catCol("c", []int64{0, 1}, 2)
	if _, ok := c.Value(0); ok {
		t.Fatal("synthetic column should have no dictionary")
	}
	if _, ok := c.Code("x"); ok {
		t.Fatal("synthetic column should not resolve strings")
	}
}

func TestFromCSVNegativeNumbers(t *testing.T) {
	tab, err := FromCSV("t", strings.NewReader("delta\n-5\n10\n-3\n"))
	if err != nil {
		t.Fatal(err)
	}
	c := tab.Column("delta")
	if c.Type != Numeric || c.Min != -5 || c.Max != 10 {
		t.Fatalf("column = %+v", c)
	}
}
