package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Relationship describes how a table connects to the schema's center table.
type Relationship int

const (
	// DimOfCenter means the center table holds a foreign key into this
	// table (N:1, e.g. a fact table referencing a dimension). The key of
	// the dimension table is its row index.
	DimOfCenter Relationship = iota
	// SatelliteOfCenter means this table holds a foreign key into the
	// center table (1:N, e.g. cast_info referencing title). The key of the
	// center table is its row index.
	SatelliteOfCenter
)

// JoinTable is a non-center table of a Schema together with its join edge.
type JoinTable struct {
	Table *Table
	Rel   Relationship
	// FKCol names the foreign-key column: a column of the center table for
	// DimOfCenter edges, or a column of this table for SatelliteOfCenter.
	FKCol string
}

// Schema is a star/snowflake-shaped multi-table database centred on one
// table, covering both the DSB (fact → dimensions) and JOB (hub ← satellites)
// join topologies used in the paper's multi-table experiments.
type Schema struct {
	Center *Table
	Joins  map[string]JoinTable
}

// Tables returns all table names in the schema, center first, rest sorted.
func (s *Schema) Tables() []string {
	names := make([]string, 0, len(s.Joins))
	for n := range s.Joins {
		names = append(names, n)
	}
	sort.Strings(names)
	return append([]string{s.Center.Name}, names...)
}

// Table returns the named table (center or joined), or nil.
func (s *Schema) Table(name string) *Table {
	if name == s.Center.Name {
		return s.Center
	}
	if jt, ok := s.Joins[name]; ok {
		return jt.Table
	}
	return nil
}

// JoinQuery is a select-project-join query over a Schema: the center table
// joined with a subset of its connected tables, with conjunctive predicates
// per table.
type JoinQuery struct {
	// Tables lists the joined tables besides the center.
	Tables []string
	// Preds maps table name (including the center) to its conjuncts.
	Preds map[string][]Predicate
}

// JoinCount returns the exact cardinality of q over the schema. For N:1
// dimension edges each center row matches at most one dimension row; for 1:N
// satellite edges the contribution is the per-key count of satellite rows
// passing that table's predicates. The result is
//
//	sum over center rows r passing center predicates of
//	  prod over joined dims d  [dim row fk_d(r) passes d's predicates] *
//	  prod over joined sats s  (# rows of s with fk == key(r) passing s's predicates)
func (s *Schema) JoinCount(q JoinQuery) (int64, error) {
	type dimCheck struct {
		fk   []int64 // center FK column
		pass []bool  // per-dim-row predicate result
	}
	type satCheck struct {
		cnt []int64 // per-center-key count of passing satellite rows
	}
	var dims []dimCheck
	var sats []satCheck

	nCenter := s.Center.NumRows()
	for _, name := range q.Tables {
		jt, ok := s.Joins[name]
		if !ok {
			return 0, fmt.Errorf("dataset: schema has no join table %q", name)
		}
		preds := q.Preds[name]
		switch jt.Rel {
		case DimOfCenter:
			fkCol := s.Center.Column(jt.FKCol)
			if fkCol == nil {
				return 0, fmt.Errorf("dataset: center %q missing FK column %q", s.Center.Name, jt.FKCol)
			}
			pass := make([]bool, jt.Table.NumRows())
			rows, err := jt.Table.MatchingRows(preds)
			if err != nil {
				return 0, err
			}
			for _, i := range rows {
				pass[i] = true
			}
			dims = append(dims, dimCheck{fk: fkCol.Values, pass: pass})
		case SatelliteOfCenter:
			fkCol := jt.Table.Column(jt.FKCol)
			if fkCol == nil {
				return 0, fmt.Errorf("dataset: satellite %q missing FK column %q", name, jt.FKCol)
			}
			cnt := make([]int64, nCenter)
			rows, err := jt.Table.MatchingRows(preds)
			if err != nil {
				return 0, err
			}
			for _, i := range rows {
				k := fkCol.Values[i]
				if k >= 0 && k < int64(nCenter) {
					cnt[k]++
				}
			}
			sats = append(sats, satCheck{cnt: cnt})
		default:
			return 0, fmt.Errorf("dataset: unknown relationship %d for %q", jt.Rel, name)
		}
	}

	centerRows, err := s.Center.MatchingRows(q.Preds[s.Center.Name])
	if err != nil {
		return 0, err
	}
	var total int64
rows:
	for _, r := range centerRows {
		contrib := int64(1)
		for _, d := range dims {
			k := d.fk[r]
			if k < 0 || k >= int64(len(d.pass)) || !d.pass[k] {
				continue rows
			}
		}
		for _, sct := range sats {
			contrib *= sct.cnt[r]
			if contrib == 0 {
				continue rows
			}
		}
		total += contrib
	}
	return total, nil
}

// MaxJoinCount returns an upper bound on any query's cardinality over the
// joined tables in q: the cardinality of the unfiltered join. It is used to
// normalise join-query selectivities.
func (s *Schema) MaxJoinCount(tables []string) (int64, error) {
	return s.JoinCount(JoinQuery{Tables: tables, Preds: nil})
}

// GenerateDSB synthesises a TPC-DS/DSB-like star schema: a store_sales fact
// table referencing date_dim, item, store and customer dimensions, with
// skewed foreign keys and correlated dimension attributes.
func GenerateDSB(cfg GenConfig) (*Schema, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows
	nDate := int64(365)
	nItem := max(int64(n/50), 20)
	nStore := int64(25)
	nCust := max(int64(n/20), 50)

	dateDim := MustNewTable("date_dim", []*Column{
		numCol("d_month", gaussianInts(r, int(nDate), 6, 3.4, 11), 0, 11),
		catCol("d_day_of_week", uniformCodes(r, int(nDate), 7), 7),
		catCol("d_holiday", zipfCodes(r, int(nDate), 2, 3.0), 2),
	})
	itemCat := zipfCodes(r, int(nItem), 10, 1.3)
	item := MustNewTable("item", []*Column{
		catCol("i_category", itemCat, 10),
		catCol("i_brand", correlate(r, itemCat, 50, 0.8), 50),
		numCol("i_price", gaussianInts(r, int(nItem), 120, 80, 499), 0, 499),
	})
	store := MustNewTable("store", []*Column{
		catCol("s_state", zipfCodes(r, int(nStore), 10, 1.2), 10),
		numCol("s_floor_space", gaussianInts(r, int(nStore), 400, 150, 999), 0, 999),
	})
	custState := zipfCodes(r, int(nCust), 50, 1.4)
	customer := MustNewTable("customer", []*Column{
		catCol("c_state", custState, 50),
		catCol("c_gender", uniformCodes(r, int(nCust), 2), 2),
		numCol("c_birth_year", gaussianInts(r, int(nCust), 45, 20, 99), 0, 99),
	})

	factDate := zipfCodes(r, n, nDate, 1.1)
	factItem := zipfCodes(r, n, nItem, 1.3)
	factStore := zipfCodes(r, n, nStore, 1.2)
	factCust := zipfCodes(r, n, nCust, 1.1)
	fact := MustNewTable("store_sales", []*Column{
		catCol("ss_sold_date_sk", factDate, nDate),
		catCol("ss_item_sk", factItem, nItem),
		catCol("ss_store_sk", factStore, nStore),
		catCol("ss_customer_sk", factCust, nCust),
		numCol("ss_quantity", gaussianInts(r, n, 20, 12, 99), 0, 99),
		numCol("ss_sales_price", gaussianInts(r, n, 150, 90, 499), 0, 499),
	})

	return &Schema{
		Center: fact,
		Joins: map[string]JoinTable{
			"date_dim": {Table: dateDim, Rel: DimOfCenter, FKCol: "ss_sold_date_sk"},
			"item":     {Table: item, Rel: DimOfCenter, FKCol: "ss_item_sk"},
			"store":    {Table: store, Rel: DimOfCenter, FKCol: "ss_store_sk"},
			"customer": {Table: customer, Rel: DimOfCenter, FKCol: "ss_customer_sk"},
		},
	}, nil
}

// GenerateJOB synthesises a JOB/IMDB-like snowflake: a title hub with
// satellite tables (movie_info, cast_info, movie_companies, movie_keyword)
// each holding many rows per title, producing the fan-out joins that make
// traditional estimators underestimate correlated queries.
func GenerateJOB(cfg GenConfig) (*Schema, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	nTitle := cfg.Rows

	kind := zipfCodes(r, nTitle, 7, 1.5)
	year := gaussianInts(r, nTitle, 80, 25, 129) // production year offset
	title := MustNewTable("title", []*Column{
		catCol("kind_id", kind, 7),
		numCol("production_year", year, 0, 129),
	})

	// Satellite generator: rows per title follow a Zipf fan-out whose scale
	// can depend on the owning title's attributes (popular kinds carry far
	// more cast/info rows in IMDB), and satellite attributes correlate with
	// the title's attributes. Both effects make traditional estimators —
	// which assume uniform fan-out and attribute independence —
	// underestimate exactly the correlated queries the paper highlights.
	makeSat := func(name, fkName string, avgFan int, fanBoost func(titleRow int) int,
		mk func(titleRow int) []int64, colDefs []*Column) *Table {
		var fk []int64
		var attrs [][]int64
		for range colDefs {
			attrs = append(attrs, nil)
		}
		fan := rand.NewZipf(r, 1.4, 1, uint64(4*avgFan))
		for t := 0; t < nTitle; t++ {
			k := int(fan.Uint64()) + 1
			if fanBoost != nil {
				k *= fanBoost(t)
			}
			for j := 0; j < k; j++ {
				fk = append(fk, int64(t))
				vals := mk(t)
				for ci, v := range vals {
					attrs[ci] = append(attrs[ci], v)
				}
			}
		}
		cols := []*Column{{Name: fkName, Type: Categorical, Values: fk, DomainSize: int64(nTitle), Max: int64(nTitle) - 1}}
		for ci, def := range colDefs {
			c := *def
			c.Values = attrs[ci]
			cols = append(cols, &c)
		}
		return MustNewTable(name, cols)
	}

	movieInfo := makeSat("movie_info", "mi_movie_id", 3, nil, func(t int) []int64 {
		infoType := (kind[t]*3 + r.Int63n(4)) % 20
		return []int64{infoType, r.Int63n(100)}
	}, []*Column{
		{Name: "mi_info_type", Type: Categorical, DomainSize: 20, Max: 19},
		{Name: "mi_value", Type: Numeric, Max: 99},
	})

	// Cast fan-out explodes for the dominant kind: blockbusters have huge
	// cast lists.
	castInfo := makeSat("cast_info", "ci_movie_id", 5, func(t int) int {
		if kind[t] == 0 {
			return 6
		}
		return 1
	}, func(t int) []int64 {
		role := (year[t]/20 + r.Int63n(6)) % 11
		return []int64{role}
	}, []*Column{
		{Name: "ci_role_id", Type: Categorical, DomainSize: 11, Max: 10},
	})

	movieCompanies := makeSat("movie_companies", "mc_movie_id", 2, nil, func(t int) []int64 {
		ctype := (kind[t] + r.Int63n(2)) % 4
		return []int64{ctype, zipfOne(r, 100, 1.4)}
	}, []*Column{
		{Name: "mc_company_type", Type: Categorical, DomainSize: 4, Max: 3},
		{Name: "mc_company_id", Type: Categorical, DomainSize: 100, Max: 99},
	})

	// Keyword fan-out grows with recency: modern titles are tagged heavily.
	movieKeyword := makeSat("movie_keyword", "mk_movie_id", 4, func(t int) int {
		if year[t] >= 90 {
			return 4
		}
		return 1
	}, func(t int) []int64 {
		return []int64{zipfOne(r, 200, 1.3)}
	}, []*Column{
		{Name: "mk_keyword_id", Type: Categorical, DomainSize: 200, Max: 199},
	})

	return &Schema{
		Center: title,
		Joins: map[string]JoinTable{
			"movie_info":      {Table: movieInfo, Rel: SatelliteOfCenter, FKCol: "mi_movie_id"},
			"cast_info":       {Table: castInfo, Rel: SatelliteOfCenter, FKCol: "ci_movie_id"},
			"movie_companies": {Table: movieCompanies, Rel: SatelliteOfCenter, FKCol: "mc_movie_id"},
			"movie_keyword":   {Table: movieKeyword, Rel: SatelliteOfCenter, FKCol: "mk_movie_id"},
		},
	}, nil
}

func zipfOne(r *rand.Rand, domain int64, s float64) int64 {
	z := rand.NewZipf(r, s, 1, uint64(domain-1))
	return int64(z.Uint64())
}
