// Package dataset provides the columnar data substrate for cardinality
// estimation experiments: in-memory tables, exact predicate evaluation
// (the ground-truth oracle Card(q)), synthetic single-table dataset
// generators matching the shape of the DMV, Census, Forest and Power
// datasets used in the paper, and multi-table star schemas with exact
// join cardinality counting for the DSB- and JOB-style workloads.
package dataset

import "fmt"

// ColumnType distinguishes categorical columns (small discrete domains,
// queried with equality predicates) from numeric columns (ordered domains,
// queried with range predicates). Both are stored as int64 codes; numeric
// columns carry an ordered integer domain.
type ColumnType int

const (
	// Categorical columns hold discrete codes in [0, DomainSize).
	Categorical ColumnType = iota
	// Numeric columns hold ordered integer values in [Min, Max].
	Numeric
)

func (t ColumnType) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column is a single attribute of a table stored column-wise.
type Column struct {
	Name string
	Type ColumnType
	// Values holds one code per row. For Categorical columns the codes are
	// dense in [0, DomainSize). For Numeric columns they are arbitrary
	// integers within [Min, Max].
	Values []int64
	// DomainSize is the number of distinct categories (categorical only).
	DomainSize int64
	// Min and Max bound the domain (numeric only; Min==0 for categorical).
	Min, Max int64
	// Dict maps codes back to original string values for columns loaded
	// from external data (see FromCSV); nil for synthetic columns.
	Dict []string
	// lookup inverts Dict.
	lookup map[string]int64
}

// Distinct returns the number of distinct values actually present.
func (c *Column) Distinct() int {
	seen := make(map[int64]struct{}, 64)
	for _, v := range c.Values {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// DomainWidth returns the size of the column's value domain: DomainSize for
// categorical columns and Max-Min+1 for numeric ones.
func (c *Column) DomainWidth() int64 {
	if c.Type == Categorical {
		return c.DomainSize
	}
	return c.Max - c.Min + 1
}

// Table is an immutable in-memory relation.
type Table struct {
	Name   string
	Cols   []*Column
	byName map[string]int
}

// NewTable assembles a table from columns, validating that all columns have
// equal length and unique names.
func NewTable(name string, cols []*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: table %q has no columns", name)
	}
	n := len(cols[0].Values)
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if len(c.Values) != n {
			return nil, fmt.Errorf("dataset: table %q column %q has %d rows, want %d",
				name, c.Name, len(c.Values), n)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: table %q has duplicate column %q", name, c.Name)
		}
		byName[c.Name] = i
	}
	return &Table{Name: name, Cols: cols, byName: byName}, nil
}

// MustNewTable is NewTable that panics on error; intended for generators
// whose invariants guarantee validity.
func MustNewTable(name string, cols []*Column) *Table {
	t, err := NewTable(name, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return len(t.Cols[0].Values) }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.Cols) }

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Cols[i]
}

// ColumnIndex returns the position of the named column and whether it exists.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.byName[name]
	return i, ok
}

// SelectRows returns a new table containing the given rows (in order). Used
// to build leave-fold-out training sets for data-driven models.
func (t *Table) SelectRows(rows []int) *Table {
	cols := make([]*Column, len(t.Cols))
	for ci, c := range t.Cols {
		nc := *c
		nc.Values = make([]int64, len(rows))
		for ri, r := range rows {
			nc.Values[ri] = c.Values[r]
		}
		cols[ci] = &nc
	}
	return MustNewTable(t.Name, cols)
}

// Row materialises row i as a slice of codes, one per column, in column order.
// The returned slice is freshly allocated.
func (t *Table) Row(i int) []int64 {
	row := make([]int64, len(t.Cols))
	for j, c := range t.Cols {
		row[j] = c.Values[i]
	}
	return row
}
