package dataset

import "testing"

func TestDSBSchemaShape(t *testing.T) {
	sch, err := GenerateDSB(GenConfig{Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Center.Name != "store_sales" {
		t.Fatalf("center = %s", sch.Center.Name)
	}
	if len(sch.Joins) != 4 {
		t.Fatalf("joins = %d, want 4", len(sch.Joins))
	}
	names := sch.Tables()
	if names[0] != "store_sales" || len(names) != 5 {
		t.Fatalf("Tables() = %v", names)
	}
	for _, n := range names {
		if sch.Table(n) == nil {
			t.Fatalf("Table(%q) = nil", n)
		}
	}
	if sch.Table("nope") != nil {
		t.Fatal("Table(nope) should be nil")
	}
}

func TestJoinCountNoFilterEqualsFactSize(t *testing.T) {
	sch, err := GenerateDSB(GenConfig{Rows: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// N:1 joins with no predicates preserve fact cardinality.
	n, err := sch.JoinCount(JoinQuery{Tables: []string{"item", "store"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(sch.Center.NumRows()) {
		t.Fatalf("unfiltered star join = %d, want %d", n, sch.Center.NumRows())
	}
}

func TestJoinCountDimFilterBruteForce(t *testing.T) {
	sch, err := GenerateDSB(GenConfig{Rows: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := JoinQuery{
		Tables: []string{"item"},
		Preds: map[string][]Predicate{
			"store_sales": {{Col: "ss_quantity", Op: OpRange, Lo: 10, Hi: 40}},
			"item":        {{Col: "i_category", Op: OpEq, Lo: 0}},
		},
	}
	got, err := sch.JoinCount(q)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over fact rows.
	item := sch.Joins["item"].Table
	fk := sch.Center.Column("ss_item_sk").Values
	qty := sch.Center.Column("ss_quantity").Values
	cat := item.Column("i_category").Values
	var want int64
	for i := 0; i < sch.Center.NumRows(); i++ {
		if qty[i] >= 10 && qty[i] <= 40 && cat[fk[i]] == 0 {
			want++
		}
	}
	if got != want {
		t.Fatalf("JoinCount = %d, want %d", got, want)
	}
}

func TestJOBSatelliteJoinBruteForce(t *testing.T) {
	sch, err := GenerateJOB(GenConfig{Rows: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := JoinQuery{
		Tables: []string{"cast_info", "movie_info"},
		Preds: map[string][]Predicate{
			"title":      {{Col: "kind_id", Op: OpEq, Lo: 1}},
			"cast_info":  {{Col: "ci_role_id", Op: OpRange, Lo: 0, Hi: 4}},
			"movie_info": {{Col: "mi_info_type", Op: OpRange, Lo: 0, Hi: 9}},
		},
	}
	got, err := sch.JoinCount(q)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: per-title counts multiplied.
	ci := sch.Joins["cast_info"].Table
	mi := sch.Joins["movie_info"].Table
	ciCnt := make([]int64, sch.Center.NumRows())
	for i := 0; i < ci.NumRows(); i++ {
		if r := ci.Column("ci_role_id").Values[i]; r >= 0 && r <= 4 {
			ciCnt[ci.Column("ci_movie_id").Values[i]]++
		}
	}
	miCnt := make([]int64, sch.Center.NumRows())
	for i := 0; i < mi.NumRows(); i++ {
		if v := mi.Column("mi_info_type").Values[i]; v >= 0 && v <= 9 {
			miCnt[mi.Column("mi_movie_id").Values[i]]++
		}
	}
	var want int64
	kind := sch.Center.Column("kind_id").Values
	for tIdx := 0; tIdx < sch.Center.NumRows(); tIdx++ {
		if kind[tIdx] == 1 {
			want += ciCnt[tIdx] * miCnt[tIdx]
		}
	}
	if got != want {
		t.Fatalf("JoinCount = %d, want %d", got, want)
	}
}

func TestJoinCountUnknownTable(t *testing.T) {
	sch, err := GenerateDSB(GenConfig{Rows: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.JoinCount(JoinQuery{Tables: []string{"ghost"}}); err == nil {
		t.Fatal("expected error for unknown join table")
	}
}

func TestMaxJoinCountUpperBounds(t *testing.T) {
	sch, err := GenerateJOB(GenConfig{Rows: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tables := []string{"cast_info", "movie_keyword"}
	max, err := sch.MaxJoinCount(tables)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := sch.JoinCount(JoinQuery{
		Tables: tables,
		Preds: map[string][]Predicate{
			"title": {{Col: "production_year", Op: OpRange, Lo: 40, Hi: 90}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filtered > max {
		t.Fatalf("filtered join %d exceeds unfiltered max %d", filtered, max)
	}
	if max <= 0 {
		t.Fatalf("MaxJoinCount = %d, want positive", max)
	}
}

func TestJoinPredicateMonotonicity(t *testing.T) {
	sch, err := GenerateDSB(GenConfig{Rows: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base := JoinQuery{
		Tables: []string{"customer"},
		Preds: map[string][]Predicate{
			"customer": {{Col: "c_gender", Op: OpEq, Lo: 0}},
		},
	}
	n1, err := sch.JoinCount(base)
	if err != nil {
		t.Fatal(err)
	}
	narrower := JoinQuery{
		Tables: base.Tables,
		Preds: map[string][]Predicate{
			"customer":    base.Preds["customer"],
			"store_sales": {{Col: "ss_sales_price", Op: OpRange, Lo: 0, Hi: 200}},
		},
	}
	n2, err := sch.JoinCount(narrower)
	if err != nil {
		t.Fatal(err)
	}
	if n2 > n1 {
		t.Fatalf("adding a predicate increased join count: %d > %d", n2, n1)
	}
}
