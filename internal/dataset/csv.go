package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// FromCSV loads a table from CSV data with a header row. Column types are
// inferred per column: if every non-empty value parses as an integer the
// column is Numeric (domain = observed [min, max]); otherwise values are
// dictionary-encoded as a Categorical column (codes assigned in order of
// first appearance; the dictionary is retained for lookups, so queries can
// reference string values). Empty fields are rejected — the estimation
// substrate has no NULL semantics.
func FromCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV header")
	}
	raw := make([][]string, len(header))
	rowCount := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", rowCount+2, err)
		}
		for i, v := range rec {
			if v == "" {
				return nil, fmt.Errorf("dataset: empty value in column %q at row %d", header[i], rowCount+2)
			}
			raw[i] = append(raw[i], v)
		}
		rowCount++
	}
	if rowCount == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}

	cols := make([]*Column, len(header))
	for ci, colName := range header {
		cols[ci] = inferColumn(colName, raw[ci])
	}
	return NewTable(name, cols)
}

// inferColumn builds a Numeric column when every value is an integer, and a
// dictionary-encoded Categorical column otherwise.
func inferColumn(name string, values []string) *Column {
	ints := make([]int64, len(values))
	numeric := true
	for i, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			numeric = false
			break
		}
		ints[i] = n
	}
	if numeric {
		min, max := ints[0], ints[0]
		for _, v := range ints {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return &Column{Name: name, Type: Numeric, Values: ints, Min: min, Max: max}
	}
	// Dictionary encoding in order of first appearance.
	codes := make([]int64, len(values))
	lookup := make(map[string]int64)
	var dict []string
	for i, v := range values {
		code, ok := lookup[v]
		if !ok {
			code = int64(len(dict))
			lookup[v] = code
			dict = append(dict, v)
		}
		codes[i] = code
	}
	return &Column{
		Name: name, Type: Categorical, Values: codes,
		DomainSize: int64(len(dict)), Max: int64(len(dict)) - 1,
		Dict: dict, lookup: lookup,
	}
}

// Code returns the dictionary code for a string value of a categorical
// column, or false if the value (or a dictionary) is absent.
func (c *Column) Code(value string) (int64, bool) {
	if c.lookup == nil {
		return 0, false
	}
	code, ok := c.lookup[value]
	return code, ok
}

// Value returns the original string for a dictionary code, or false when
// the column has no dictionary or the code is out of range.
func (c *Column) Value(code int64) (string, bool) {
	if c.Dict == nil || code < 0 || code >= int64(len(c.Dict)) {
		return "", false
	}
	return c.Dict[code], true
}
