package dataset

import "testing"

func BenchmarkCount(b *testing.B) {
	tab, err := GenerateDMV(GenConfig{Rows: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	preds := []Predicate{
		{Col: "state", Op: OpEq, Lo: 3},
		{Col: "model_year", Op: OpRange, Lo: 40, Hi: 90},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Count(preds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinCount(b *testing.B) {
	sch, err := GenerateJOB(GenConfig{Rows: 5000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	q := JoinQuery{
		Tables: []string{"cast_info", "movie_info"},
		Preds: map[string][]Predicate{
			"title":     {{Col: "kind_id", Op: OpEq, Lo: 0}},
			"cast_info": {{Col: "ci_role_id", Op: OpRange, Lo: 0, Hi: 4}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.JoinCount(q); err != nil {
			b.Fatal(err)
		}
	}
}
