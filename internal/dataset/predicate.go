package dataset

import (
	"fmt"
	"runtime"
	"sync"
)

// Op is a predicate operator. The paper evaluates conjunctive queries whose
// predicates are either point (A = v) or range (lb <= A <= ub).
type Op int

const (
	// OpEq matches rows where the column equals Lo.
	OpEq Op = iota
	// OpRange matches rows where Lo <= value <= Hi.
	OpRange
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpRange:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a single conjunct over one column of one table.
type Predicate struct {
	Col string
	Op  Op
	// Lo is the point value for OpEq, or the lower bound for OpRange.
	Lo int64
	// Hi is the upper bound for OpRange (ignored for OpEq).
	Hi int64
}

// Matches reports whether value v satisfies the predicate.
func (p Predicate) Matches(v int64) bool {
	if p.Op == OpEq {
		return v == p.Lo
	}
	return v >= p.Lo && v <= p.Hi
}

func (p Predicate) String() string {
	if p.Op == OpEq {
		return fmt.Sprintf("%s = %d", p.Col, p.Lo)
	}
	return fmt.Sprintf("%d <= %s <= %d", p.Lo, p.Col, p.Hi)
}

// bound is a compiled per-column range check.
type bound struct {
	col    []int64
	lo, hi int64
}

func (t *Table) compile(preds []Predicate) ([]bound, error) {
	bounds := make([]bound, 0, len(preds))
	for _, p := range preds {
		c := t.Column(p.Col)
		if c == nil {
			return nil, fmt.Errorf("dataset: table %q has no column %q", t.Name, p.Col)
		}
		lo, hi := p.Lo, p.Hi
		if p.Op == OpEq {
			hi = p.Lo
		}
		bounds = append(bounds, bound{col: c.Values, lo: lo, hi: hi})
	}
	return bounds, nil
}

// countChunk counts matching rows in [start, end).
func countChunk(bounds []bound, start, end int) int64 {
	var count int64
rows:
	for i := start; i < end; i++ {
		for _, b := range bounds {
			v := b.col[i]
			if v < b.lo || v > b.hi {
				continue rows
			}
		}
		count++
	}
	return count
}

// parallelThreshold is the row count above which scans fan out across CPUs;
// below it goroutine overhead dominates.
const parallelThreshold = 65536

// Count returns the exact number of rows in t satisfying the conjunction of
// preds. Predicates naming columns absent from t yield an error. Large
// tables are scanned in parallel chunks; the result is exact and
// deterministic either way.
func (t *Table) Count(preds []Predicate) (int64, error) {
	bounds, err := t.compile(preds)
	if err != nil {
		return 0, err
	}
	n := t.NumRows()
	if n < parallelThreshold {
		return countChunk(bounds, 0, n), nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	partial := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			partial[w] = countChunk(bounds, start, end)
		}(w, start, end)
	}
	wg.Wait()
	var total int64
	for _, c := range partial {
		total += c
	}
	return total, nil
}

// Selectivity returns Count(preds) normalised by the table size.
func (t *Table) Selectivity(preds []Predicate) (float64, error) {
	c, err := t.Count(preds)
	if err != nil {
		return 0, err
	}
	return float64(c) / float64(t.NumRows()), nil
}

// MatchingRows returns the indexes of all rows satisfying the conjunction,
// in ascending order.
func (t *Table) MatchingRows(preds []Predicate) ([]int, error) {
	bounds, err := t.compile(preds)
	if err != nil {
		return nil, err
	}
	var out []int
	n := t.NumRows()
rows:
	for i := 0; i < n; i++ {
		for _, b := range bounds {
			v := b.col[i]
			if v < b.lo || v > b.hi {
				continue rows
			}
		}
		out = append(out, i)
	}
	return out, nil
}
