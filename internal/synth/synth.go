// Package synth implements the budget-aware per-workload estimator
// meta-search — "generate, don't tune": given a workload description and a
// budget, it enumerates the pipeline's model × method combo table plus a
// small hyperparameter lattice, prunes trials that can never fit the budget
// using the combo table's static estimates (before any training runs),
// builds and scores the survivors in parallel over a shared staged build
// graph (so trials share table loads, workload labeling, featurization, and
// model training), and emits a checksummed leaderboard artifact plus the
// winning .cpi bundle.
//
// Determinism contract: for a fixed Options (same workload, budget, seed),
// the leaderboard bytes and the winning bundle bytes are identical for any
// worker count. Everything that feeds a budget decision or a score is a
// deterministic function of the inputs — static cost estimates from the
// combo table, reproducible builds, a fixed trial enumeration order, and
// index-keyed result collection. Measured wall-clock never enters the
// leaderboard; it is reported only through the cardpi_synth_* metrics and
// the log.
package synth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"runtime"
	"sort"
	"strings"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/obs"
	"cardpi/internal/par"
	"cardpi/internal/pipeline"
	"cardpi/internal/workload"
)

// LeaderboardKind is the sniffable "kind" field value of a leaderboard
// JSON document, letting inspect distinguish leaderboards from other JSON.
const LeaderboardKind = "cardpi-synth-leaderboard"

// LeaderboardSchemaVersion is the leaderboard document layout version.
const LeaderboardSchemaVersion = 1

// Default search knobs.
const (
	// defaultEvalQueries is the held-out scoring workload size.
	defaultEvalQueries = 500
	// evalSeedOff offsets the eval workload's seed from the root seed, far
	// from the pipeline's derived seeds (+1, +2, +3, +10) so eval queries
	// are disjoint from training and calibration by construction.
	evalSeedOff = 1000
	// coveragePenalty scales the coverage shortfall in the score: missing
	// the coverage target by 1 point costs as much as 10 full units of
	// width, so candidates that hit the target are preferred almost
	// lexicographically.
	coveragePenalty = 10.0
)

// Budget bounds the search. Zero-valued fields are unconstrained.
// TrainTime and NsPerQuery gate on the combo table's deterministic static
// estimates (never measured wall-clock, which would break reproducibility);
// ArtifactBytes gates twice — statically before training (lower bound) and
// exactly after serialisation (actual bundle bytes, which are reproducible).
type Budget struct {
	// TrainTime caps the estimated training cost per trial.
	TrainTime time.Duration
	// ArtifactBytes caps the serialised .cpi bundle size.
	ArtifactBytes int64
	// NsPerQuery caps the estimated per-query serve latency.
	NsPerQuery int64
	// TargetCoverage is the empirical coverage the winner should reach on
	// the held-out workload; 0 defaults to 1-Alpha.
	TargetCoverage float64
	// WidthObjective selects the width statistic to minimise: "mean"
	// (default) or "p90".
	WidthObjective string
}

// budgetJSON is the leaderboard's record of the budget (train time in
// nanoseconds so the document is unit-explicit).
type budgetJSON struct {
	TrainNs        int64   `json:"train_ns,omitempty"`
	ArtifactBytes  int64   `json:"artifact_bytes,omitempty"`
	NsPerQuery     int64   `json:"ns_per_query,omitempty"`
	TargetCoverage float64 `json:"target_coverage"`
	WidthObjective string  `json:"width_objective"`
}

// Lattice is the hyperparameter grid crossed with the combo table. Nil
// slices take the defaults noted per field. Method-specific knobs only
// expand trials of their method; the epoch knob only expands families that
// train by epochs (mscn, lwnn, naru).
type Lattice struct {
	// Epochs lists training-epoch overrides (0 = family default).
	// Default: [0].
	Epochs []int
	// CalFracs lists calibration-split fractions (0 = default 0.4).
	// Default: [0].
	CalFracs []float64
	// KDivs lists localized-CP k divisors (lcp trials only).
	// Default: [4, 8].
	KDivs []int
	// MinGroups lists Mondrian merge floors (mondrian trials only).
	// Default: [20, 10].
	MinGroups []int
}

func (l Lattice) withDefaults() Lattice {
	if len(l.Epochs) == 0 {
		l.Epochs = []int{0}
	}
	if len(l.CalFracs) == 0 {
		l.CalFracs = []float64{0}
	}
	if len(l.KDivs) == 0 {
		l.KDivs = []int{4, 8}
	}
	if len(l.MinGroups) == 0 {
		l.MinGroups = []int{20, 10}
	}
	return l
}

// Options configures one synthesis run. Dataset/CSVPath/Rows/Queries/Seed/
// Alpha describe the tenant workload exactly as pipeline.Config does.
type Options struct {
	// Dataset is the synthetic generator name; ignored when CSVPath is set.
	Dataset string
	// CSVPath, when non-empty, loads the table from a CSV file.
	CSVPath string
	// Rows is the generated table size.
	Rows int
	// Queries is the training+calibration workload size per trial.
	Queries int
	// Seed is the root random seed shared by every trial.
	Seed int64
	// Alpha is the miscoverage level (coverage target = 1-Alpha unless
	// Budget.TargetCoverage overrides it).
	Alpha float64
	// Budget bounds the search; see Budget.
	Budget Budget
	// Lattice is the hyperparameter grid; see Lattice.
	Lattice Lattice
	// Models restricts the search to these families (nil = all).
	Models []string
	// Methods restricts the search to these PI methods (nil = all).
	Methods []string
	// EvalQueries sizes the held-out scoring workload (0 = 500).
	EvalQueries int
	// Workers bounds trial parallelism (0 = NumCPU). Results are
	// identical for any value.
	Workers int
	// Metrics receives the cardpi_synth_* families (nil = obs.Default()).
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Trial statuses, in leaderboard rank order.
const (
	// StatusScored marks a trial that was built and scored.
	StatusScored = "scored"
	// StatusRejected marks a trial built successfully but over budget on
	// its actual (exact) artifact size.
	StatusRejected = "rejected"
	// StatusPruned marks a trial eliminated before training by a static
	// budget bound.
	StatusPruned = "pruned"
	// StatusFailed marks a trial whose build or scoring errored.
	StatusFailed = "failed"
)

// Trial is one leaderboard entry: a (model, method, hyperparameter) point
// with its provenance, budget estimates, and — when scored — its held-out
// metrics. All fields are deterministic for a fixed Options.
type Trial struct {
	// ID is the trial's position in the fixed enumeration order.
	ID int `json:"id"`
	// Rank is the 1-based leaderboard rank; 0 for unscored trials.
	Rank int `json:"rank,omitempty"`
	// Model is the estimator family.
	Model string `json:"model"`
	// Method is the PI method.
	Method string `json:"method"`
	// Epochs is the training-epoch override (0 = family default).
	Epochs int `json:"epochs,omitempty"`
	// CalFrac is the calibration-split override (0 = default 0.4).
	CalFrac float64 `json:"cal_frac,omitempty"`
	// KDiv is the localized-CP k divisor (lcp trials only).
	KDiv int `json:"kdiv,omitempty"`
	// MinGroup is the Mondrian merge floor (mondrian trials only).
	MinGroup int `json:"min_group,omitempty"`
	// Status is scored | rejected | pruned | failed.
	Status string `json:"status"`
	// Reason records why a trial was pruned, rejected, or failed.
	Reason string `json:"reason,omitempty"`
	// Score is the scalar objective (lower is better); see scoring in
	// DESIGN.md. Present only for scored trials.
	Score float64 `json:"score,omitempty"`
	// Coverage is the empirical held-out coverage (scored trials).
	Coverage float64 `json:"coverage,omitempty"`
	// MeanWidth is the held-out mean interval width (scored trials).
	MeanWidth float64 `json:"mean_width,omitempty"`
	// P90Width is the held-out p90 interval width (scored trials).
	P90Width float64 `json:"p90_width,omitempty"`
	// ArtifactBytes is the exact serialised bundle size (built trials).
	ArtifactBytes int64 `json:"artifact_bytes,omitempty"`
	// EstMinArtifactBytes is the static artifact-size lower bound.
	EstMinArtifactBytes int64 `json:"est_min_artifact_bytes"`
	// EstTrainNs is the static training-cost estimate.
	EstTrainNs int64 `json:"est_train_ns"`
	// EstServeNs is the static per-query latency estimate.
	EstServeNs int64 `json:"est_serve_ns"`
}

// Leaderboard is the synthesis report artifact: run provenance, the budget,
// every trial with its outcome, and a self-checksum. Encode produces
// canonical bytes; Decode verifies them.
type Leaderboard struct {
	// Kind identifies the document (LeaderboardKind).
	Kind string `json:"kind"`
	// SchemaVersion is the document layout version.
	SchemaVersion int `json:"schema_version"`
	// Dataset is the synthetic dataset name or CSV table name.
	Dataset string `json:"dataset"`
	// Source is "generated" or "csv".
	Source string `json:"source"`
	// Rows is the generated table size.
	Rows int `json:"rows,omitempty"`
	// Queries is the per-trial workload size.
	Queries int `json:"queries"`
	// EvalQueries is the held-out scoring workload size.
	EvalQueries int `json:"eval_queries"`
	// Seed is the root seed shared by every trial.
	Seed int64 `json:"seed"`
	// Alpha is the miscoverage level.
	Alpha float64 `json:"alpha"`
	// Budget records the budget the run enforced.
	Budget budgetJSON `json:"budget"`
	// WinnerID is the winning trial's ID, -1 when nothing scored.
	WinnerID int `json:"winner_id"`
	// Trials lists every trial: scored by rank, then rejected, pruned,
	// and failed by ID.
	Trials []Trial `json:"trials"`
	// Checksum is the CRC-32 (hex) of the document serialised with this
	// field empty.
	Checksum string `json:"checksum"`
}

// Encode renders the leaderboard as canonical, checksummed JSON.
func (lb *Leaderboard) Encode() ([]byte, error) {
	cp := *lb
	cp.Checksum = ""
	raw, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, err
	}
	cp.Checksum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw))
	out, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses leaderboard bytes and verifies the embedded checksum.
func Decode(b []byte) (*Leaderboard, error) {
	var lb Leaderboard
	if err := json.Unmarshal(b, &lb); err != nil {
		return nil, fmt.Errorf("synth: parsing leaderboard: %w", err)
	}
	if lb.Kind != LeaderboardKind {
		return nil, fmt.Errorf("synth: not a leaderboard document (kind %q)", lb.Kind)
	}
	if lb.SchemaVersion != LeaderboardSchemaVersion {
		return nil, fmt.Errorf("synth: leaderboard schema version %d, this build reads %d",
			lb.SchemaVersion, LeaderboardSchemaVersion)
	}
	want := lb.Checksum
	cp := lb
	cp.Checksum = ""
	raw, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, err
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw)); got != want {
		return nil, fmt.Errorf("synth: leaderboard checksum mismatch: computed %s, stored %s (corrupt or hand-edited)", got, want)
	}
	return &lb, nil
}

// Result is a completed synthesis: the leaderboard, the winning trial (nil
// when every trial was pruned, rejected, or failed), and the winner's
// reproducible build.
type Result struct {
	// Leaderboard is the full trial report.
	Leaderboard *Leaderboard
	// Winner points at the winning trial inside Leaderboard.Trials, nil
	// when nothing scored.
	Winner *Trial
	// Setup is the winner's built pipeline (nil without a winner).
	Setup *pipeline.Setup
	// Config is the winner's build configuration, suitable for
	// pipeline.SaveBundle and for reproducing the build.
	Config pipeline.Config
	// Bundle is the winner's serialised .cpi artifact bytes.
	Bundle []byte
}

// trialResult carries a trial's outcome plus the per-trial build products
// that stay out of the leaderboard.
type trialResult struct {
	trial  Trial
	cfg    pipeline.Config
	setup  *pipeline.Setup
	bundle []byte
}

// enumerate expands the combo table × lattice into the fixed trial order:
// combo-table order outermost (models, then methods), then calibration
// fraction, epochs, and the method-specific knob. The order — and therefore
// every trial ID — is independent of budget, workers, and timing.
func enumerate(opts Options, lat Lattice) ([]Trial, error) {
	wantModel, err := nameFilter(opts.Models, "model")
	if err != nil {
		return nil, err
	}
	wantMethod, err := nameFilter(opts.Methods, "method")
	if err != nil {
		return nil, err
	}
	var trials []Trial
	for _, combo := range pipeline.Combos() {
		model, method := combo[0], combo[1]
		if !wantModel(model) || !wantMethod(method) {
			continue
		}
		epochs := []int{0}
		if hasEpochKnob(model) {
			epochs = lat.Epochs
		}
		kdivs, mingroups := []int{0}, []int{0}
		if method == "lcp" {
			kdivs = lat.KDivs
		}
		if method == "mondrian" {
			mingroups = lat.MinGroups
		}
		for _, cf := range lat.CalFracs {
			for _, ep := range epochs {
				for _, kd := range kdivs {
					for _, mg := range mingroups {
						trials = append(trials, Trial{
							ID: len(trials), Model: model, Method: method,
							Epochs: ep, CalFrac: cf, KDiv: kd, MinGroup: mg,
						})
					}
				}
			}
		}
	}
	if len(trials) == 0 {
		return nil, fmt.Errorf("synth: model/method filters matched no valid combo")
	}
	return trials, nil
}

// hasEpochKnob reports whether the family's training is epoch-driven.
func hasEpochKnob(model string) bool {
	switch model {
	case "mscn", "lwnn", "naru":
		return true
	}
	return false
}

// nameFilter validates an allow-list against the combo table and returns
// its membership predicate.
func nameFilter(names []string, kind string) (func(string) bool, error) {
	if len(names) == 0 {
		return func(string) bool { return true }, nil
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		known := false
		for _, combo := range pipeline.Combos() {
			if (kind == "model" && combo[0] == n) || (kind == "method" && combo[1] == n) {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("synth: unknown %s %q", kind, n)
		}
		set[n] = true
	}
	return func(s string) bool { return set[s] }, nil
}

// config assembles the trial's pipeline configuration.
func (t Trial) config(opts Options) pipeline.Config {
	return pipeline.Config{
		Dataset: opts.Dataset, CSVPath: opts.CSVPath,
		Model: t.Model, Method: t.Method,
		Alpha: opts.Alpha, Rows: opts.Rows, Queries: opts.Queries, Seed: opts.Seed,
		Epochs: t.Epochs, CalFrac: t.CalFrac,
		LocalizedKDiv: t.KDiv, MondrianMinGroup: t.MinGroup,
	}
}

// Synthesize runs the meta-search and returns the leaderboard and winner.
// It never writes files; callers persist Result.Bundle and the encoded
// leaderboard (see cmd/cardpi's synth subcommand for the atomic-write
// convention).
func Synthesize(opts Options) (*Result, error) {
	start := time.Now()
	if opts.EvalQueries <= 0 {
		opts.EvalQueries = defaultEvalQueries
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	target := opts.Budget.TargetCoverage
	if target <= 0 {
		target = 1 - opts.Alpha
	}
	objective := strings.ToLower(opts.Budget.WidthObjective)
	if objective == "" {
		objective = "mean"
	}
	if objective != "mean" && objective != "p90" {
		return nil, fmt.Errorf("synth: unknown width objective %q (want mean | p90)", opts.Budget.WidthObjective)
	}
	lat := opts.Lattice.withDefaults()

	g := pipeline.NewGraph()
	baseCfg := pipeline.Config{Dataset: opts.Dataset, CSVPath: opts.CSVPath,
		Rows: opts.Rows, Seed: opts.Seed, Logf: opts.Logf}
	tab, err := g.Table(baseCfg)
	if err != nil {
		return nil, err
	}
	evalWl, err := pipeline.EvalWorkload(tab, opts.EvalQueries, opts.Seed+evalSeedOff)
	if err != nil {
		return nil, err
	}

	trials, err := enumerate(opts, lat)
	if err != nil {
		return nil, err
	}
	opts.logf("synth: %d trials over %d workers (eval %d queries, target coverage %.3f, objective %s)",
		len(trials), opts.Workers, opts.EvalQueries, target, objective)

	pool := par.NewPool(opts.Workers)
	results, err := par.Map(pool, len(trials), func(i int) (trialResult, error) {
		return runTrial(g, tab, evalWl, opts, trials[i], target, objective), nil
	})
	if err != nil {
		return nil, err
	}

	lb := assembleLeaderboard(opts, target, objective, results)
	res := &Result{Leaderboard: lb}
	if lb.WinnerID >= 0 {
		res.Winner = &lb.Trials[0]
		for i := range results {
			if results[i].trial.ID == lb.WinnerID {
				res.Setup = results[i].setup
				res.Config = results[i].cfg
				res.Bundle = results[i].bundle
			}
		}
	}
	publishMetrics(opts, lb, time.Since(start))
	opts.logf("synth: done in %s: %s", time.Since(start).Round(time.Millisecond), Summary(lb))
	return res, nil
}

// runTrial takes one trial through the budget gates, the shared build
// graph, and held-out scoring. Errors become StatusFailed entries rather
// than aborting the run.
func runTrial(g *pipeline.Graph, tab *dataset.Table, evalWl *workload.Workload,
	opts Options, t Trial, target float64, objective string) trialResult {
	cfg := t.config(opts)
	res := trialResult{cfg: cfg}

	t.EstMinArtifactBytes, _ = pipeline.EstimateMinArtifactBytes(t.Model, tab)
	t.EstTrainNs, _ = pipeline.EstimateTrainNs(t.Model, t.Method, opts.Rows, opts.Queries, t.Epochs)
	calSize := int(float64(opts.Queries) * calFracOf(t.CalFrac))
	t.EstServeNs, _ = pipeline.EstimateServeNs(t.Model, t.Method, calSize)

	b := opts.Budget
	switch {
	case b.ArtifactBytes > 0 && t.EstMinArtifactBytes > b.ArtifactBytes:
		t.Status, t.Reason = StatusPruned, fmt.Sprintf(
			"static artifact lower bound %d B exceeds budget %d B (model never trained)",
			t.EstMinArtifactBytes, b.ArtifactBytes)
	case b.TrainTime > 0 && t.EstTrainNs > b.TrainTime.Nanoseconds():
		t.Status, t.Reason = StatusPruned, fmt.Sprintf(
			"estimated train cost %s exceeds budget %s (model never trained)",
			time.Duration(t.EstTrainNs), b.TrainTime)
	case b.NsPerQuery > 0 && t.EstServeNs > b.NsPerQuery:
		t.Status, t.Reason = StatusPruned, fmt.Sprintf(
			"estimated serve latency %d ns/query exceeds budget %d ns/query (model never trained)",
			t.EstServeNs, b.NsPerQuery)
	}
	if t.Status == StatusPruned {
		res.trial = t
		return res
	}

	setup, err := g.Build(cfg)
	if err != nil {
		t.Status, t.Reason = StatusFailed, "build: "+err.Error()
		res.trial = t
		return res
	}
	var buf bytes.Buffer
	if err := pipeline.SaveBundle(&buf, setup, cfg); err != nil {
		t.Status, t.Reason = StatusFailed, "serialise: "+err.Error()
		res.trial = t
		return res
	}
	t.ArtifactBytes = int64(buf.Len())
	if b.ArtifactBytes > 0 && t.ArtifactBytes > b.ArtifactBytes {
		t.Status, t.Reason = StatusRejected, fmt.Sprintf(
			"artifact is %d B, exceeds budget %d B", t.ArtifactBytes, b.ArtifactBytes)
		res.trial = t
		return res
	}

	intervals := make([]conformal.Interval, len(evalWl.Queries))
	truths := make([]float64, len(evalWl.Queries))
	for i, lq := range evalWl.Queries {
		iv, err := setup.PI.Interval(lq.Query)
		if err != nil {
			t.Status, t.Reason = StatusFailed, "score: "+err.Error()
			res.trial = t
			return res
		}
		intervals[i] = iv
		truths[i] = lq.Sel
	}
	cov, err := conformal.Coverage(intervals, truths)
	if err != nil {
		t.Status, t.Reason = StatusFailed, "score: "+err.Error()
		res.trial = t
		return res
	}
	widths, err := conformal.Widths(intervals)
	if err != nil {
		t.Status, t.Reason = StatusFailed, "score: "+err.Error()
		res.trial = t
		return res
	}
	t.Coverage, t.MeanWidth, t.P90Width = cov, widths.Mean, widths.P90
	width := t.MeanWidth
	if objective == "p90" {
		width = t.P90Width
	}
	shortfall := target - cov
	if shortfall < 0 {
		shortfall = 0
	}
	t.Score = width + coveragePenalty*shortfall
	t.Status = StatusScored
	res.trial = t
	res.setup = setup
	res.bundle = append([]byte(nil), buf.Bytes()...)
	return res
}

// calFracOf resolves the calibration fraction for the serve-cost estimate.
func calFracOf(cf float64) float64 {
	if cf > 0 && cf < 1 {
		return cf
	}
	return 0.4
}

// statusOrder ranks statuses for the leaderboard layout.
func statusOrder(s string) int {
	switch s {
	case StatusScored:
		return 0
	case StatusRejected:
		return 1
	case StatusPruned:
		return 2
	default:
		return 3
	}
}

// assembleLeaderboard sorts trials (scored by ascending score with ID
// tie-break, then rejected, pruned, failed by ID), assigns ranks, and fills
// the provenance header.
func assembleLeaderboard(opts Options, target float64, objective string, results []trialResult) *Leaderboard {
	trials := make([]Trial, len(results))
	for i, r := range results {
		trials[i] = r.trial
	}
	sort.SliceStable(trials, func(i, j int) bool {
		si, sj := statusOrder(trials[i].Status), statusOrder(trials[j].Status)
		if si != sj {
			return si < sj
		}
		if si == 0 && trials[i].Score != trials[j].Score {
			return trials[i].Score < trials[j].Score
		}
		return trials[i].ID < trials[j].ID
	})
	winner := -1
	rank := 0
	for i := range trials {
		if trials[i].Status == StatusScored {
			rank++
			trials[i].Rank = rank
			if winner < 0 {
				winner = trials[i].ID
			}
		}
	}
	lb := &Leaderboard{
		Kind: LeaderboardKind, SchemaVersion: LeaderboardSchemaVersion,
		Dataset: opts.Dataset, Source: "generated",
		Rows: opts.Rows, Queries: opts.Queries, EvalQueries: opts.EvalQueries,
		Seed: opts.Seed, Alpha: opts.Alpha,
		Budget: budgetJSON{
			TrainNs:        opts.Budget.TrainTime.Nanoseconds(),
			ArtifactBytes:  opts.Budget.ArtifactBytes,
			NsPerQuery:     opts.Budget.NsPerQuery,
			TargetCoverage: target,
			WidthObjective: objective,
		},
		WinnerID: winner,
		Trials:   trials,
	}
	if opts.CSVPath != "" {
		lb.Source = "csv"
	}
	return lb
}

// Counts tallies leaderboard trials by status.
func Counts(lb *Leaderboard) map[string]int {
	out := map[string]int{}
	for _, t := range lb.Trials {
		out[t.Status]++
	}
	return out
}

// Summary renders a one-line outcome ("12 scored, 4 pruned, winner mscn/cqr
// score 0.031") for logs and admin responses.
func Summary(lb *Leaderboard) string {
	c := Counts(lb)
	s := fmt.Sprintf("%d scored, %d rejected, %d pruned, %d failed",
		c[StatusScored], c[StatusRejected], c[StatusPruned], c[StatusFailed])
	if lb.WinnerID >= 0 && len(lb.Trials) > 0 {
		w := lb.Trials[0]
		s += fmt.Sprintf("; winner %s/%s score %.6f", w.Model, w.Method, w.Score)
	} else {
		s += "; no winner"
	}
	return s
}

// publishMetrics emits the cardpi_synth_* families for one run.
func publishMetrics(opts Options, lb *Leaderboard, wall time.Duration) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	reg.Counter("cardpi_synth_runs_total", "Completed synthesis runs.").Inc()
	counts := Counts(lb)
	for _, status := range []string{StatusScored, StatusRejected, StatusPruned, StatusFailed} {
		reg.Counter("cardpi_synth_trials_total",
			"Synthesis trials by outcome status.", obs.L("status", status)).Add(uint64(counts[status]))
	}
	if lb.WinnerID >= 0 && len(lb.Trials) > 0 {
		reg.Gauge("cardpi_synth_best_score",
			"Winning trial's score (width + coverage-shortfall penalty) of the last synthesis run.").Set(lb.Trials[0].Score)
	}
	reg.Gauge("cardpi_synth_wall_seconds",
		"Wall-clock duration of the last synthesis run.").Set(wall.Seconds())
}
