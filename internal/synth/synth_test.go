package synth

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"cardpi/internal/obs"
	"cardpi/internal/pipeline"
)

// testOptions is the shared small-but-real search: census table, three
// families (naru included so the artifact budget statically prunes it), the
// full method set, and a budget sized so histogram/spn bundles fit but naru
// can never.
func testOptions() Options {
	return Options{
		Dataset: "census", Rows: 1500, Queries: 240, Seed: 1, Alpha: 0.1,
		Models:      []string{"histogram", "spn", "naru"},
		EvalQueries: 120,
		Budget:      Budget{ArtifactBytes: 128 << 10},
		Metrics:     obs.NewRegistry(),
	}
}

// TestSynthDeterministicAcrossWorkers is the reproducibility contract: the
// same workload + budget + seed yields byte-identical leaderboards and
// byte-identical winning bundles for 1, 2, and NumCPU workers. Runs under
// the CI -race step.
func TestSynthDeterministicAcrossWorkers(t *testing.T) {
	var wantLB, wantBundle []byte
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		opts := testOptions()
		opts.Workers = workers
		res, err := Synthesize(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		lb, err := res.Leaderboard.Encode()
		if err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		if wantLB == nil {
			wantLB, wantBundle = lb, res.Bundle
			counts := Counts(res.Leaderboard)
			if counts[StatusScored] < 8 {
				t.Fatalf("only %d scored trials, want >= 8", counts[StatusScored])
			}
			if counts[StatusPruned] < 1 {
				t.Fatalf("no pruned trials; the naru size bound should prune under a %d B budget",
					opts.Budget.ArtifactBytes)
			}
			if res.Winner == nil || len(res.Bundle) == 0 {
				t.Fatal("no winner produced")
			}
			continue
		}
		if !bytes.Equal(lb, wantLB) {
			t.Errorf("workers=%d: leaderboard bytes differ from workers=1", workers)
		}
		if !bytes.Equal(res.Bundle, wantBundle) {
			t.Errorf("workers=%d: winning bundle bytes differ from workers=1", workers)
		}
	}
}

// TestSynthPrunesBeforeTraining is the satellite-1 contract: a family whose
// static artifact lower bound exceeds the byte budget is pruned without its
// training code path ever running, and the leaderboard records the reason.
func TestSynthPrunesBeforeTraining(t *testing.T) {
	var trainings []string
	pipeline.OnTrain = func(what string) { trainings = append(trainings, what) }
	defer func() { pipeline.OnTrain = nil }()

	opts := testOptions()
	opts.Models = []string{"histogram", "naru"}
	opts.Methods = []string{"s-cp"}
	opts.Workers = 1
	res, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range trainings {
		if w == "model/naru" {
			t.Fatal("naru trained despite being statically over the artifact budget")
		}
	}
	found := false
	for _, tr := range res.Leaderboard.Trials {
		if tr.Model != "naru" {
			continue
		}
		found = true
		if tr.Status != StatusPruned {
			t.Fatalf("naru trial status %q, want pruned", tr.Status)
		}
		if !strings.Contains(tr.Reason, "lower bound") || !strings.Contains(tr.Reason, "never trained") {
			t.Fatalf("pruning reason %q does not explain the static bound", tr.Reason)
		}
		if tr.EstMinArtifactBytes <= opts.Budget.ArtifactBytes {
			t.Fatalf("recorded lower bound %d does not exceed budget %d",
				tr.EstMinArtifactBytes, opts.Budget.ArtifactBytes)
		}
	}
	if !found {
		t.Fatal("no naru trial in leaderboard")
	}
	if res.Winner == nil || res.Winner.Model != "histogram" {
		t.Fatalf("winner %+v, want a histogram trial", res.Winner)
	}
}

// TestSynthSharesPrefixesAcrossTrials proves the meta-search actually rides
// the build graph: a run with many trials per family trains each family's
// point model exactly once.
func TestSynthSharesPrefixesAcrossTrials(t *testing.T) {
	var trainings []string
	pipeline.OnTrain = func(what string) { trainings = append(trainings, what) }
	defer func() { pipeline.OnTrain = nil }()

	opts := testOptions()
	opts.Models = []string{"histogram"}
	opts.Workers = 1
	res, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := Counts(res.Leaderboard)[StatusScored]; n < 6 {
		t.Fatalf("%d scored histogram trials, want >= 6 (methods x lattice)", n)
	}
	count := 0
	for _, w := range trainings {
		if w == "model/histogram" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("histogram trained %d times across the trial fan-out, want 1", count)
	}
}

// TestSynthWinnerMatchesRebuild is the acceptance bit-identity contract:
// rebuilding the winner from its recorded Config through the ordinary
// pipeline entry point yields byte-identical .cpi bundle bytes, so the
// artifact synth emits is exactly what `cardpi train` (or serve's
// in-process build) would produce for the same configuration.
func TestSynthWinnerMatchesRebuild(t *testing.T) {
	opts := testOptions()
	opts.Models = []string{"histogram", "spn"}
	res, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil {
		t.Fatal("no winner")
	}
	setup, err := pipeline.Build(res.Config)
	if err != nil {
		t.Fatalf("rebuild winner config: %v", err)
	}
	var buf bytes.Buffer
	if err := pipeline.SaveBundle(&buf, setup, res.Config); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), res.Bundle) {
		t.Errorf("rebuilt bundle differs from synth output (%d vs %d bytes)",
			buf.Len(), len(res.Bundle))
	}
}

// TestLeaderboardChecksum proves Encode/Decode round-trips and that
// tampering is detected.
func TestLeaderboardChecksum(t *testing.T) {
	lb := &Leaderboard{
		Kind: LeaderboardKind, SchemaVersion: LeaderboardSchemaVersion,
		Dataset: "census", Source: "generated", Rows: 10, Queries: 5, EvalQueries: 3,
		Seed: 1, Alpha: 0.1,
		Budget:   budgetJSON{TargetCoverage: 0.9, WidthObjective: "mean"},
		WinnerID: 0,
		Trials:   []Trial{{ID: 0, Model: "histogram", Method: "s-cp", Status: StatusScored, Rank: 1, Score: 0.25}},
	}
	enc, err := lb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.WinnerID != 0 || len(dec.Trials) != 1 || dec.Trials[0].Score != 0.25 {
		t.Fatalf("decoded leaderboard mangled: %+v", dec)
	}
	tampered := bytes.Replace(enc, []byte(`"score": 0.25`), []byte(`"score": 0.75`), 1)
	if bytes.Equal(tampered, enc) {
		t.Fatal("tamper target not found in encoding")
	}
	if _, err := Decode(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered leaderboard decoded without a checksum error: %v", err)
	}
}
