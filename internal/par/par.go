// Package par provides a small bounded worker pool for the repository's
// fan-out workloads: fold-model training, truth labeling, per-query interval
// production, and per-dataset experiment pipelines. It replaces hand-rolled
// `go func` fan-outs whose concurrency grew with the problem size (K fold
// models meant K goroutines) with a pool bounded by the worker count, so a
// K=50 Jackknife+ run on a 4-core box no longer oversubscribes memory and
// CPU.
//
// Determinism contract: items are distributed to workers dynamically, but
// every result is keyed by its item index, all items are always processed
// (an item error never cancels the rest), and the error returned is the one
// raised by the lowest-indexed failing item. Callers that seed per-item work
// (for example fold training with seed+fold) therefore observe output
// independent of the worker count and of scheduling order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cardpi/internal/obs"
)

// batchWorkers is the process-wide worker count for the sharded batch
// kernels (RunBlocks): 0 means "use runtime.GOMAXPROCS(0)". It is a single
// atomic so the serve layer's -workers flag can configure every batch
// kernel — model forward passes, conformal interval production, featurizer
// loops — in one place.
var batchWorkers atomic.Int64

// SetBatchWorkers sets the worker count the sharded batch kernels
// (RunBlocks) fan row blocks over. w <= 0 restores the default,
// runtime.GOMAXPROCS(0); values above GOMAXPROCS are stored as given but
// clamped at use (see RunBlocks). Results of every kernel built on
// RunBlocks are bit-identical for any worker count; this knob trades
// latency against CPU only. Safe for concurrent use (atomic store), though
// callers normally set it once at startup.
func SetBatchWorkers(w int) {
	if w < 0 {
		w = 0
	}
	batchWorkers.Store(int64(w))
}

// BatchWorkers returns the effective worker count for the sharded batch
// kernels: the value set by SetBatchWorkers, or runtime.GOMAXPROCS(0) when
// unset. Always >= 1.
func BatchWorkers() int {
	if w := int(batchWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// BlockRange returns the half-open row range [lo, hi) of block b when n rows
// are partitioned into blocks contiguous, balanced blocks (sizes differ by
// at most one row, earlier blocks never smaller than later ones by more than
// one). The partition depends only on (n, blocks), never on scheduling, so
// block ownership is deterministic.
func BlockRange(n, blocks, b int) (lo, hi int) {
	return b * n / blocks, (b + 1) * n / blocks
}

// RunBlocks partitions [0, n) into contiguous row blocks and runs fn(lo, hi)
// for each block on the batch worker pool (BatchWorkers). The block count is
// min(BatchWorkers(), runtime.GOMAXPROCS(0), n/minBlock): the minBlock floor
// keeps small batches from being shredded into sub-minBlock crumbs, and the
// GOMAXPROCS clamp exists because these kernels are pure CPU — more workers
// than schedulable threads cannot reduce wall-clock, only add scheduler
// interleaving and cache pressure (measurably so on a 1-CPU box). With one
// block (or n <= minBlock) fn runs inline on the caller's goroutine with
// zero overhead. Blocks cover [0, n) exactly
// once, so kernels whose fn writes only rows [lo, hi) of a shared output are
// race-free and produce output independent of the worker count — the
// row-block-ownership contract every batch kernel in this repository builds
// on. All blocks always run; the returned error is that of the
// lowest-indexed failing block, which — because fn implementations scan
// their block in ascending row order and stop at the first failure — is the
// error of the lowest failing row, matching the sequential contract.
func RunBlocks(n, minBlock int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minBlock < 1 {
		minBlock = 1
	}
	w := BatchWorkers()
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if maxBlocks := n / minBlock; w > maxBlocks {
		w = maxBlocks
	}
	if w <= 1 {
		return fn(0, n)
	}
	return NewPool(w).ForEach(w, func(b int) error {
		lo, hi := BlockRange(n, w, b)
		return fn(lo, hi)
	})
}

// Pool telemetry, registered on the process-wide obs registry. Recording is
// one atomic op per event, so the per-item cost is negligible next to the
// work items themselves (interval production, fold training, labeling).
var (
	tasksTotal = obs.Default().Counter("cardpi_par_tasks_total",
		"Work items executed by the internal/par bounded worker pool.")
	queueDepth = obs.Default().IntGauge("cardpi_par_queue_depth",
		"Work items submitted to the pool and not yet finished (queued + running).")
	firstErrors = obs.Default().Counter("cardpi_par_first_errors_total",
		"Pool batches (ForEach/Map calls) that completed with at least one failing item.")
)

// Pool bounds the number of goroutines used by ForEach and Map. The zero
// value is not useful; construct with NewPool.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers goroutines; workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n) on at most p.Workers()
// goroutines. All items run even if some fail; the returned error is the
// error of the lowest-indexed failing item (nil if none failed).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.ForEachWorker(n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker index (in [0, Workers())) passed
// to fn, so callers can maintain per-worker state — scratch buffers, RNGs —
// without locking: a worker index is never active on two goroutines at once.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	queueDepth.Add(int64(n))
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Degenerate pool: run inline, same all-items/first-error contract.
		var firstErr error
		firstIdx := -1
		for i := 0; i < n; i++ {
			err := fn(0, i)
			tasksTotal.Inc()
			queueDepth.Add(-1)
			if err != nil && firstIdx < 0 {
				firstIdx, firstErr = i, err
			}
		}
		if firstErr != nil {
			firstErrors.Inc()
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := fn(wi, i)
				tasksTotal.Inc()
				queueDepth.Add(-1)
				if err != nil {
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}(wi)
	}
	wg.Wait()
	if firstErr != nil {
		firstErrors.Inc()
	}
	return firstErr
}

// ForEach runs fn over [0, n) on a default GOMAXPROCS-bounded pool.
func ForEach(n int, fn func(i int) error) error {
	return NewPool(0).ForEach(n, fn)
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in item order. All items run even when some fail — no item is ever lost —
// and the returned error is that of the lowest-indexed failing item; its
// slot holds the zero value.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
