package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrderAndItems(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	out, err := Map(p, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapFirstErrorByIndexAndNoLostItems(t *testing.T) {
	p := NewPool(8)
	const n = 500
	var processed atomic.Int64
	sentinel := errors.New("boom")
	out, err := Map(p, n, func(i int) (int, error) {
		processed.Add(1)
		// Items 100, 37 and 400 fail; the reported error must be item 37's.
		if i == 100 || i == 37 || i == 400 {
			return 0, fmt.Errorf("item %d: %w", i, sentinel)
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, sentinel) || err.Error() != "item 37: boom" {
		t.Fatalf("expected lowest-index error (item 37), got %v", err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("processed %d items, want all %d despite errors", got, n)
	}
	for i, v := range out {
		if i == 100 || i == 37 || i == 400 {
			if v != 0 {
				t.Fatalf("failed item %d slot = %d, want zero value", i, v)
			}
			continue
		}
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	err := p.ForEach(200, func(int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent items, pool bound is %d", got, workers)
	}
}

func TestForEachWorkerIndexIsExclusive(t *testing.T) {
	const workers = 5
	p := NewPool(workers)
	busy := make([]atomic.Bool, workers)
	err := p.ForEachWorker(500, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker index %d out of range", w)
		}
		if !busy[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d active twice concurrently", w)
		}
		defer busy[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDegenerateCases(t *testing.T) {
	p := NewPool(1)
	if err := p.ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 should be a no-op, got %v", err)
	}
	var seen []int
	err := p.ForEach(4, func(i int) error {
		seen = append(seen, i)
		if i == 1 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 1" {
		t.Fatalf("want first error from item 1, got %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("sequential pool must still run all items, ran %d", len(seen))
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool must have at least one worker")
	}
}

func TestPoolMetricsDeltas(t *testing.T) {
	// The pool's metrics are process-wide counters on the default obs
	// registry, so assert deltas rather than absolute values.
	tasksBefore := tasksTotal.Value()
	errsBefore := firstErrors.Value()
	depthBefore := queueDepth.Value()

	p := NewPool(4)
	const n = 257
	err := p.ForEach(n, func(i int) error {
		if i == 100 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected error")
	}
	if got := tasksTotal.Value() - tasksBefore; got != n {
		t.Fatalf("tasksTotal delta = %d, want %d", got, n)
	}
	if got := firstErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("firstErrors delta = %d, want 1", got)
	}
	if got := queueDepth.Value(); got != depthBefore {
		t.Fatalf("queueDepth = %d after completion, want %d", got, depthBefore)
	}

	// Error-free sequential batch: only tasksTotal moves.
	if err := NewPool(1).ForEach(3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := firstErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("firstErrors delta after clean batch = %d, want still 1", got)
	}
	if got := tasksTotal.Value() - tasksBefore; got != n+3 {
		t.Fatalf("tasksTotal delta = %d, want %d", got, n+3)
	}
}
