package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrderAndItems(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	out, err := Map(p, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapFirstErrorByIndexAndNoLostItems(t *testing.T) {
	p := NewPool(8)
	const n = 500
	var processed atomic.Int64
	sentinel := errors.New("boom")
	out, err := Map(p, n, func(i int) (int, error) {
		processed.Add(1)
		// Items 100, 37 and 400 fail; the reported error must be item 37's.
		if i == 100 || i == 37 || i == 400 {
			return 0, fmt.Errorf("item %d: %w", i, sentinel)
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, sentinel) || err.Error() != "item 37: boom" {
		t.Fatalf("expected lowest-index error (item 37), got %v", err)
	}
	if got := processed.Load(); got != n {
		t.Fatalf("processed %d items, want all %d despite errors", got, n)
	}
	for i, v := range out {
		if i == 100 || i == 37 || i == 400 {
			if v != 0 {
				t.Fatalf("failed item %d slot = %d, want zero value", i, v)
			}
			continue
		}
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	err := p.ForEach(200, func(int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent items, pool bound is %d", got, workers)
	}
}

func TestForEachWorkerIndexIsExclusive(t *testing.T) {
	const workers = 5
	p := NewPool(workers)
	busy := make([]atomic.Bool, workers)
	err := p.ForEachWorker(500, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker index %d out of range", w)
		}
		if !busy[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d active twice concurrently", w)
		}
		defer busy[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDegenerateCases(t *testing.T) {
	p := NewPool(1)
	if err := p.ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 should be a no-op, got %v", err)
	}
	var seen []int
	err := p.ForEach(4, func(i int) error {
		seen = append(seen, i)
		if i == 1 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 1" {
		t.Fatalf("want first error from item 1, got %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("sequential pool must still run all items, ran %d", len(seen))
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool must have at least one worker")
	}
}

func TestBlockRangeCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 1024} {
		for _, blocks := range []int{1, 2, 3, 4, 7, 16} {
			if blocks > n {
				continue
			}
			next := 0
			for b := 0; b < blocks; b++ {
				lo, hi := BlockRange(n, blocks, b)
				if lo != next {
					t.Fatalf("n=%d blocks=%d block %d starts at %d, want %d", n, blocks, b, lo, next)
				}
				if hi <= lo {
					t.Fatalf("n=%d blocks=%d block %d is empty [%d,%d)", n, blocks, b, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d blocks=%d covered %d rows", n, blocks, next)
			}
		}
	}
}

func TestRunBlocksCoverageAndWorkerInvariance(t *testing.T) {
	// Raise GOMAXPROCS so the sweep exercises real multi-goroutine fan-out
	// even on a single-CPU box (RunBlocks clamps the block count to it).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer SetBatchWorkers(0)
	const n = 1000
	for _, w := range []int{1, 2, 3, 4, 16} {
		SetBatchWorkers(w)
		hits := make([]atomic.Int64, n)
		if err := RunBlocks(n, 8, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("W=%d: row %d visited %d times, want exactly 1", w, i, got)
			}
		}
	}
}

func TestRunBlocksMinBlockForcesInline(t *testing.T) {
	defer SetBatchWorkers(0)
	SetBatchWorkers(8)
	calls := 0
	// n < 2*minBlock ⇒ a single block, run inline on the caller.
	if err := RunBlocks(100, 64, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline block = [%d,%d), want [0,100)", lo, hi)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("ran %d blocks, want 1", calls)
	}
	if err := RunBlocks(0, 1, func(int, int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
}

func TestRunBlocksLowestBlockError(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer SetBatchWorkers(0)
	SetBatchWorkers(4)
	var ran atomic.Int64
	err := RunBlocks(400, 1, func(lo, hi int) error {
		ran.Add(int64(hi - lo))
		// Blocks starting at 100 and 200 fail; block 100's error must win.
		if lo == 100 || lo == 200 {
			return fmt.Errorf("block at %d", lo)
		}
		return nil
	})
	if err == nil || err.Error() != "block at 100" {
		t.Fatalf("want lowest-block error, got %v", err)
	}
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d rows, want all 400 despite errors", got)
	}
}

func TestBatchWorkersDefaultAndClamp(t *testing.T) {
	defer SetBatchWorkers(0)
	SetBatchWorkers(-5)
	if got := BatchWorkers(); got < 1 {
		t.Fatalf("BatchWorkers() = %d after negative set, want >= 1", got)
	}
	SetBatchWorkers(3)
	if got := BatchWorkers(); got != 3 {
		t.Fatalf("BatchWorkers() = %d, want 3", got)
	}
	SetBatchWorkers(0)
	if got := BatchWorkers(); got < 1 {
		t.Fatalf("default BatchWorkers() = %d, want >= 1", got)
	}
}

func TestPoolMetricsDeltas(t *testing.T) {
	// The pool's metrics are process-wide counters on the default obs
	// registry, so assert deltas rather than absolute values.
	tasksBefore := tasksTotal.Value()
	errsBefore := firstErrors.Value()
	depthBefore := queueDepth.Value()

	p := NewPool(4)
	const n = 257
	err := p.ForEach(n, func(i int) error {
		if i == 100 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected error")
	}
	if got := tasksTotal.Value() - tasksBefore; got != n {
		t.Fatalf("tasksTotal delta = %d, want %d", got, n)
	}
	if got := firstErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("firstErrors delta = %d, want 1", got)
	}
	if got := queueDepth.Value(); got != depthBefore {
		t.Fatalf("queueDepth = %d after completion, want %d", got, depthBefore)
	}

	// Error-free sequential batch: only tasksTotal moves.
	if err := NewPool(1).ForEach(3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := firstErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("firstErrors delta after clean batch = %d, want still 1", got)
	}
	if got := tasksTotal.Value() - tasksBefore; got != n+3 {
		t.Fatalf("tasksTotal delta = %d, want %d", got, n+3)
	}
}
