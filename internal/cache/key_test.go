package cache

import (
	"fmt"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func eq(col string, v int64) dataset.Predicate {
	return dataset.Predicate{Col: col, Op: dataset.OpEq, Lo: v}
}

func rng(col string, lo, hi int64) dataset.Predicate {
	return dataset.Predicate{Col: col, Op: dataset.OpRange, Lo: lo, Hi: hi}
}

func q(preds ...dataset.Predicate) workload.Query {
	return workload.Query{Preds: preds}
}

// TestKeyCanonicalEquivalence drives the canonical-key contract: every
// syntactic variant of one semantic query must hash to the same key, and
// semantically different queries must not (collision sanity is covered
// separately at scale).
func TestKeyCanonicalEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a, b workload.Query
		same bool
	}{
		{"identical", q(eq("a", 5)), q(eq("a", 5)), true},
		{"predicate order", q(eq("a", 5), rng("b", 1, 9)), q(rng("b", 1, 9), eq("a", 5)), true},
		{"three-way order", q(eq("a", 1), eq("b", 2), eq("c", 3)), q(eq("c", 3), eq("a", 1), eq("b", 2)), true},
		{"eq vs degenerate range", q(eq("a", 5)), q(rng("a", 5, 5)), true},
		{"eq with garbage Hi", q(dataset.Predicate{Col: "a", Op: dataset.OpEq, Lo: 5, Hi: 99}), q(eq("a", 5)), true},
		{"duplicate predicate", q(eq("a", 5), eq("a", 5)), q(eq("a", 5)), true},
		{"same-column intersection", q(rng("a", 0, 10), rng("a", 5, 20)), q(rng("a", 5, 10)), true},
		{"intersection to a point", q(rng("a", 0, 7), rng("a", 7, 20)), q(eq("a", 7)), true},
		{"empty intersections alias", q(rng("a", 10, 2)), q(rng("a", 9, 3)), true},
		{"different value", q(eq("a", 5)), q(eq("a", 6)), false},
		{"different column", q(eq("a", 5)), q(eq("b", 5)), false},
		{"point vs wider range", q(eq("a", 5)), q(rng("a", 5, 6)), false},
		{"subset of predicates", q(eq("a", 5), eq("b", 2)), q(eq("a", 5)), false},
		{"swapped bounds vs values", q(rng("a", 1, 2), rng("b", 3, 4)), q(rng("a", 3, 4), rng("b", 1, 2)), false},
		{"column name concatenation", q(eq("ab", 1), eq("c", 2)), q(eq("a", 1), eq("bc", 2)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := KeyOf(tc.a), KeyOf(tc.b)
			if (ka == kb) != tc.same {
				t.Fatalf("KeyOf(%v)=%v, KeyOf(%v)=%v; want same=%v", tc.a.Preds, ka, tc.b.Preds, kb, tc.same)
			}
		})
	}
}

// TestKeyMatchesCanonicalizedQuery verifies the property the serve path
// relies on: hashing a raw query equals hashing its canonical form, so
// callers never need to canonicalize before probing.
func TestKeyMatchesCanonicalizedQuery(t *testing.T) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		canon := workload.Canonicalize(lq.Query)
		if KeyOf(lq.Query) != KeyOf(canon) {
			t.Fatalf("KeyOf(q) != KeyOf(Canonicalize(q)) for %v", lq.Query.Preds)
		}
	}
	// And for synthetic permuted/duplicated variants the generator never
	// emits (it produces one pred per column, sorted).
	base := q(rng("x", 1, 50), eq("y", 3), rng("z", -4, 4))
	variants := []workload.Query{
		q(eq("y", 3), rng("z", -4, 4), rng("x", 1, 50)),
		q(rng("z", -4, 4), rng("x", 1, 50), rng("y", 3, 3), eq("y", 3)),
		q(rng("x", 1, 80), rng("x", 0, 50), eq("y", 3), rng("z", -4, 4)),
	}
	want := KeyOf(base)
	for i, v := range variants {
		if KeyOf(v) != want {
			t.Fatalf("variant %d hashed differently", i)
		}
	}
}

// TestKeyCollisionSanity hashes a large population of distinct canonical
// queries and requires zero 128-bit collisions — a smoke check that the
// mixer has no gross structural weakness (a birthday collision among tens
// of thousands of keys would indicate one).
func TestKeyCollisionSanity(t *testing.T) {
	seen := make(map[Key]string, 100000)
	text := make(map[string]bool, 100000)
	check := func(id string, qq workload.Query) {
		// Distinct workloads can legitimately regenerate the same query;
		// dedupe by canonical text so only true hash collisions fail.
		canon := workload.Canonicalize(qq).Key()
		if text[canon] {
			return
		}
		text[canon] = true
		k := KeyOf(qq)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s: %v", prev, id, k)
		}
		seen[k] = id
	}
	// Dense grid of small queries: adjacent values and bounds, the worst
	// case for weak mixers.
	for v := int64(-100); v < 100; v++ {
		for _, col := range []string{"a", "b", "ab", "ba"} {
			check(fmt.Sprintf("eq-%s-%d", col, v), q(eq(col, v)))
		}
	}
	for lo := int64(0); lo < 60; lo++ {
		for hi := lo + 1; hi < 60; hi++ {
			check(fmt.Sprintf("rng-%d-%d", lo, hi), q(rng("a", lo, hi)))
			check(fmt.Sprintf("rng2-%d-%d", lo, hi), q(rng("b", lo, hi), eq("a", 1)))
		}
	}
	// Two generated workloads over different tables.
	for i, rows := range []int{400, 900} {
		tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: rows, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		wl, err := workload.Generate(tab, workload.Config{Count: 2000, Seed: int64(21 + i), MaxPreds: 6})
		if err != nil {
			t.Fatal(err)
		}
		for j, lq := range wl.Queries {
			// The generator dedupes by Query.Key, so every query is
			// canonically distinct.
			check(fmt.Sprintf("wl%d-%d", i, j), lq.Query)
		}
	}
	if len(seen) < 5000 {
		t.Fatalf("population too small for a collision check: %d", len(seen))
	}
}

// TestKeyOfAllocs pins the zero-allocation contract of the hot-path probe:
// hashing a parsed single-table query must not touch the heap.
func TestKeyOfAllocs(t *testing.T) {
	query := q(rng("b", 2, 8), eq("a", 5), rng("c", -3, 3), eq("d", 0))
	if n := testing.AllocsPerRun(200, func() { _ = KeyOf(query) }); n != 0 {
		t.Fatalf("KeyOf allocates %v times per run; want 0", n)
	}
}
