package cache

import (
	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

// Key is the 128-bit canonical identity of a query: the hash of its
// canonical predicate form (see workload.Canonicalize). Two queries get
// equal keys iff their canonical forms are equal — up to hash collisions,
// which at 128 bits are negligible against any realistic cache population
// (the birthday bound crosses 2^-40 only beyond ~10^13 distinct queries).
// The zero Key is a valid (if improbable) hash; entry occupancy is tracked
// separately, so no key value is reserved.
type Key struct {
	// Hi selects the set within a shard; Lo selects the shard. The two
	// halves come from independently seeded mixers, so the full 128 bits
	// back the equality check while each half is uniform on its own.
	Hi, Lo uint64
}

// maxInlinePreds bounds the stack scratch KeyOf canonicalizes into; beyond
// it the canonical form spills to the heap. Generated workloads cap
// predicates at the column count (≤ 11 across the bundled datasets) and
// the parser intersects per column, so real queries always fit.
const maxInlinePreds = 16

// KeyOf hashes q's canonical form into a Key. Single-table queries with at
// most maxInlinePreds predicates hash with zero heap allocations — the
// canonical scratch lives on the stack — which keeps the serve-layer cache
// probe allocation-free. The property tests rely on (and verify)
//
//	KeyOf(q) == KeyOf(workload.Canonicalize(q))
//
// so callers may hash raw queries directly. Join queries take the
// allocating path through Query.Key (joins are not on the serving hot
// path).
func KeyOf(q workload.Query) Key {
	if q.Join != nil {
		return keyOfString(q.Key())
	}
	var scratch [maxInlinePreds]dataset.Predicate
	var buf []dataset.Predicate
	if len(q.Preds) <= maxInlinePreds {
		buf = scratch[:0]
	} else {
		buf = make([]dataset.Predicate, 0, len(q.Preds))
	}
	buf = workload.CanonicalizePreds(buf, q.Preds)

	h := newHasher()
	h.word(uint64(len(buf)))
	for i := range buf {
		p := &buf[i]
		h.str(p.Col)
		lo, hi := p.Lo, p.Hi
		if p.Op == dataset.OpEq {
			// OpEq and OpRange[v, v] are the same canonical point; hash the
			// closed-bound pair so the op tag itself never distinguishes
			// them (non-degenerate ranges can't collide with points: their
			// bounds differ).
			hi = lo
		}
		h.word(uint64(lo))
		h.word(uint64(hi))
	}
	return h.sum()
}

// keyOfString hashes an opaque canonical string (the join-query path).
func keyOfString(s string) Key {
	h := newHasher()
	h.word(uint64(len(s)))
	h.str(s)
	return h.sum()
}

// hasher is a 128-bit incremental mixer: two independently seeded 64-bit
// lanes, each word absorbed with a multiply–xor–shift (splitmix64
// finalizer) round. It is not cryptographic — keys come from trusted
// parsed queries, and a crafted collision merely aliases one cache entry.
type hasher struct {
	h1, h2 uint64
}

func newHasher() hasher {
	return hasher{h1: 0x9E3779B97F4A7C15, h2: 0xC2B2AE3D27D4EB4F}
}

// word absorbs one 64-bit value into both lanes.
func (h *hasher) word(v uint64) {
	h.h1 = mix64(h.h1 ^ v)
	h.h2 = mix64(h.h2 + v*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
}

// str absorbs a string as little-endian 64-bit chunks plus an explicit
// length word, so "ab"+"c" and "a"+"bc" cannot alias across field
// boundaries.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	for len(s) >= 8 {
		v := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
		h.word(v)
		s = s[8:]
	}
	if len(s) > 0 {
		var v uint64
		for i := len(s) - 1; i >= 0; i-- {
			v = v<<8 | uint64(s[i])
		}
		h.word(v)
	}
}

// sum finalizes both lanes into the 128-bit key.
func (h *hasher) sum() Key {
	return Key{Hi: mix64(h.h1 ^ h.h2<<1), Lo: mix64(h.h2 ^ h.h1>>1)}
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
