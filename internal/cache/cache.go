// Package cache implements the serving-layer interval cache: a sharded,
// GC-friendly, epoch-invalidated map from canonical query keys to computed
// interval results, with singleflight coalescing of concurrent misses.
//
// Design (see DESIGN.md "Serving-layer interval cache"):
//
//   - Identity is the 128-bit canonical query hash (KeyOf): predicate order
//     and equivalent range forms are normalized before hashing, so
//     semantically identical queries share one entry.
//   - Storage is set-associative: power-of-two shards (picked from the low
//     key bits), each a flat []entry array of N-way sets (picked from the
//     high key bits) under one mutex. The entry array holds no pointers,
//     so an arbitrarily large cache adds zero GC scan work.
//   - Eviction is approximate LRU within a set: a per-shard tick stamps
//     every hit and fill, and the victim is the smallest stamp among the
//     set's ways (empty and stale-epoch ways are always preferred).
//   - Invalidation is by epoch, not by deletion: every chain or table swap
//     bumps an atomic epoch; entries record the epoch they were filled
//     under and a read requires it to match, so one atomic increment makes
//     every stale entry unreachable without touching it. Fills drop
//     results whose computation started before the bump, so a swap can
//     never be papered over by an in-flight fill.
//
// All methods are safe for concurrent use. Get is allocation-free; the
// zero-alloc serve-path guarantee is enforced by AllocsPerRun tests here
// and in cmd/cardpi.
package cache

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"cardpi/internal/obs"
)

// Epoch is the shared invalidation clock. One Epoch is typically shared by
// every cache in a server so a single bump (chain swap, table mutation,
// promote/rollback) invalidates all cached state at once; swaps are rare
// and refills are cheap, so coarse invalidation buys simple correctness.
type Epoch struct {
	v atomic.Uint64
}

// Load returns the current epoch.
func (e *Epoch) Load() uint64 { return e.v.Load() }

// Bump advances the epoch, making every entry filled under earlier epochs
// unreachable in all caches sharing this Epoch. It must be called AFTER
// the new serving state is published (chain/table store): a computation
// that snapshots the old state and the old epoch is then guaranteed to
// either land before the bump (reclaimed by it) or be dropped at fill
// time. Returns the new epoch.
func (e *Epoch) Bump() uint64 { return e.v.Add(1) }

// Result is one cached answer: everything deterministic that the serve
// path computes for a query under a fixed chain and table. Ground truth is
// included because the serving demo owns the oracle (a full table scan —
// the dominant per-request cost, and exactly what a hot cache must avoid);
// live telemetry (drift flag, rolling coverage) is never cached.
type Result struct {
	// Est is the point estimate in normalized selectivity units; -1 is the
	// sentinel for an unavailable estimate (matching the serve path).
	Est float64
	// Lo and Hi are the prediction interval bounds in normalized
	// selectivity units.
	Lo, Hi float64
	// TrueRows is the oracle cardinality, -1 when unavailable.
	TrueRows int64
	// HasTruth reports whether TrueRows carries a real count.
	HasTruth bool
}

// Metrics bundles the cardpi_cache_* instruments one cache reports into.
// Construct with NewMetrics, or leave the cache's Config.Metrics nil for
// unmetered operation.
type Metrics struct {
	// Hits counts reads answered from a live entry.
	Hits *obs.Counter
	// Misses counts reads that found no live entry.
	Misses *obs.Counter
	// Coalesced counts singleflight followers that reused a concurrent
	// leader's computation instead of executing their own.
	Coalesced *obs.Counter
	// Evictions counts live entries overwritten to make room.
	Evictions *obs.Counter
	// EpochInvalidations counts stale-epoch entries reclaimed (on read or
	// overwrite) after an epoch bump.
	EpochInvalidations *obs.Counter
	// Size tracks the number of live entries.
	Size *obs.IntGauge
}

// NewMetrics registers the cardpi_cache_* families on reg under the given
// labels (callers add a distinguishing label, e.g. unit="tenant/table",
// when several caches share one registry). See OBSERVABILITY.md.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	return &Metrics{
		Hits: reg.Counter("cardpi_cache_hits_total",
			"Interval-cache reads answered from a live entry.", labels...),
		Misses: reg.Counter("cardpi_cache_misses_total",
			"Interval-cache reads that found no live entry.", labels...),
		Coalesced: reg.Counter("cardpi_cache_coalesced_total",
			"Concurrent cache misses that reused a singleflight leader's computation.", labels...),
		Evictions: reg.Counter("cardpi_cache_evictions_total",
			"Live interval-cache entries overwritten to make room.", labels...),
		EpochInvalidations: reg.Counter("cardpi_cache_epoch_invalidations_total",
			"Stale-epoch interval-cache entries reclaimed after an invalidation bump.", labels...),
		Size: reg.IntGauge("cardpi_cache_size",
			"Live interval-cache entries.", labels...),
	}
}

// noopMetrics backs unmetered caches; the zero-value obs instruments are
// valid atomics that are simply never exported.
var noopMetrics = &Metrics{
	Hits: &obs.Counter{}, Misses: &obs.Counter{}, Coalesced: &obs.Counter{},
	Evictions: &obs.Counter{}, EpochInvalidations: &obs.Counter{},
	Size: &obs.IntGauge{},
}

// ways is the set associativity: victim search scans this many entries, a
// single cache line's worth of keys, and a hot key survives up to ways-1
// colliding neighbors before approximate LRU picks it.
const ways = 8

// entry is one cache slot. The struct is pointer-free on purpose: shards
// hold flat []entry arrays the GC never scans.
type entry struct {
	key   Key
	epoch uint64
	tick  uint64
	res   Result
	used  bool
}

// shard is one lock domain: a flat set-associative entry array plus the
// LRU tick. Padded to a cache line so neighboring shards don't false-share.
type shard struct {
	mu      sync.Mutex
	tick    uint64
	entries []entry
	_       [24]byte
}

// Config sizes a Cache.
type Config struct {
	// Entries is the total capacity; it is rounded up so each shard holds
	// a power-of-two number of 8-way sets. <= 0 takes 4096.
	Entries int
	// Shards is the lock-domain count, rounded up to a power of two;
	// <= 0 takes 8.
	Shards int
	// Epoch is the shared invalidation clock; nil gives the cache a
	// private one (then Invalidate is the only bump source).
	Epoch *Epoch
	// Metrics receives the cardpi_cache_* counters; nil disables metering.
	Metrics *Metrics
}

// Cache is the epoch-invalidated interval cache. See the package comment
// for the design; construct with New.
type Cache struct {
	epoch     *Epoch
	m         *Metrics
	shards    []shard
	shardMask uint64
	setMask   uint64

	// Singleflight state: one call per (key, epoch) in flight. Keying by
	// epoch means a bump strands old flights — post-swap arrivals start a
	// fresh computation on the new chain rather than adopting a pre-swap
	// leader's result.
	fmu    sync.Mutex
	flight map[flightKey]*flightCall
}

// New builds a Cache from cfg (see Config for the rounding rules).
func New(cfg Config) *Cache {
	if cfg.Entries <= 0 {
		cfg.Entries = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	nShards := 1 << bits.Len(uint(cfg.Shards-1))
	perShard := (cfg.Entries + nShards - 1) / nShards
	nSets := (perShard + ways - 1) / ways
	if nSets < 1 {
		nSets = 1
	}
	nSets = 1 << bits.Len(uint(nSets-1))
	c := &Cache{
		epoch:     cfg.Epoch,
		m:         cfg.Metrics,
		shards:    make([]shard, nShards),
		shardMask: uint64(nShards - 1),
		setMask:   uint64(nSets - 1),
		flight:    make(map[flightKey]*flightCall),
	}
	if c.epoch == nil {
		c.epoch = new(Epoch)
	}
	if c.m == nil {
		c.m = noopMetrics
	}
	for i := range c.shards {
		c.shards[i].entries = make([]entry, nSets*ways)
	}
	return c
}

// Cap returns the total entry capacity after rounding.
func (c *Cache) Cap() int { return len(c.shards) * len(c.shards[0].entries) }

// Epoch returns the cache's invalidation clock (shared or private).
func (c *Cache) Epoch() *Epoch { return c.epoch }

// Invalidate bumps the epoch, making every current entry unreachable (in
// every cache sharing the clock). See Epoch.Bump for the ordering rule.
func (c *Cache) Invalidate() { c.epoch.Bump() }

// Get returns the live entry for k, if any. Allocation-free. A located
// entry whose epoch predates the current one counts as a miss, is
// reclaimed on the spot, and increments the epoch-invalidation counter.
func (c *Cache) Get(k Key) (Result, bool) {
	cur := c.epoch.Load()
	sh := &c.shards[k.Lo&c.shardMask]
	base := (k.Hi & c.setMask) * ways
	sh.mu.Lock()
	for i := base; i < base+ways; i++ {
		e := &sh.entries[i]
		if e.used && e.key == k {
			if e.epoch != cur {
				e.used = false
				sh.mu.Unlock()
				c.m.EpochInvalidations.Inc()
				c.m.Size.Add(-1)
				c.m.Misses.Inc()
				return Result{}, false
			}
			sh.tick++
			e.tick = sh.tick
			res := e.res
			sh.mu.Unlock()
			c.m.Hits.Inc()
			return res, true
		}
	}
	sh.mu.Unlock()
	c.m.Misses.Inc()
	return Result{}, false
}

// Put stores res for k, tagged with the epoch the computation started
// under. If the epoch has moved on since, the result describes a dead
// chain or table and is dropped — the caller must snapshot Epoch().Load()
// (or use Do, which does) BEFORE resolving the serving state it computes
// against. Victim order within the set: same key > empty way > stale-epoch
// way > approximate-LRU minimum tick.
func (c *Cache) Put(k Key, epoch uint64, res Result) {
	if epoch != c.epoch.Load() {
		return
	}
	sh := &c.shards[k.Lo&c.shardMask]
	base := (k.Hi & c.setMask) * ways
	var sizeDelta int64
	var evicted, reclaimed bool
	sh.mu.Lock()
	victim, empty := -1, -1
	for i := base; i < base+ways; i++ {
		e := &sh.entries[i]
		if e.used && e.key == k {
			victim = int(i)
			break
		}
		if !e.used && empty < 0 {
			empty = int(i)
		}
	}
	if victim < 0 {
		victim = empty
	}
	if victim < 0 {
		// Full set, no same-key way: prefer a stale-epoch victim, else
		// evict the least-recently-touched live entry.
		var bestTick uint64
		for i := base; i < base+ways; i++ {
			e := &sh.entries[i]
			if e.epoch != epoch {
				victim = int(i)
				reclaimed = true
				break
			}
			if victim < 0 || e.tick < bestTick {
				victim, bestTick = int(i), e.tick
			}
		}
		if !reclaimed {
			evicted = true
		}
	}
	e := &sh.entries[victim]
	if !e.used {
		sizeDelta = 1
	}
	sh.tick++
	*e = entry{key: k, epoch: epoch, tick: sh.tick, res: res, used: true}
	sh.mu.Unlock()
	if sizeDelta != 0 {
		c.m.Size.Add(sizeDelta)
	}
	if evicted {
		c.m.Evictions.Inc()
	}
	if reclaimed {
		c.m.EpochInvalidations.Inc()
	}
}

// Len counts the live entries (any epoch); intended for tests and the
// sizing probe, not the hot path.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := range sh.entries {
			if sh.entries[j].used {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// flightKey keys in-flight computations by (query, epoch).
type flightKey struct {
	k     Key
	epoch uint64
}

// flightCall is one in-flight leader computation; followers block on wg.
// waiters (guarded by the cache's fmu) counts blocked followers — used by
// the coalescing tests to close timing races deterministically.
type flightCall struct {
	wg      sync.WaitGroup
	waiters int
	res     Result
	aux     uint64
	err     error
}

// Waiters reports how many followers are blocked on the in-flight
// computation for k under the current epoch, or -1 when no such flight
// exists. Test instrumentation: the coalescing tests poll it to close
// scheduling races deterministically before releasing a gated leader.
func (c *Cache) Waiters(k Key) int {
	fk := flightKey{k: k, epoch: c.epoch.Load()}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if call, ok := c.flight[fk]; ok {
		return call.waiters
	}
	return -1
}

// Do coalesces concurrent computations of k: the first caller under the
// current epoch runs fn (the leader), every concurrent caller with the
// same key and epoch blocks and reuses the leader's return (shared=true,
// counted as coalesced). fn returns the result, an opaque aux word
// passed through to every caller (the serve layer carries the fallback
// depth there), and store — whether the result is cacheable; a stored
// result is Put under the epoch snapshotted before fn ran, so a
// mid-flight invalidation drops it. Followers inherit the leader's error.
//
// Followers wait for the leader without a deadline of their own: the
// leader runs under its caller's context, so the wait is bounded by that
// request's budget. An epoch bump strands the flight — arrivals after the
// bump elect a fresh leader against the new serving state.
func (c *Cache) Do(k Key, fn func() (res Result, aux uint64, store bool, err error)) (res Result, aux uint64, shared bool, err error) {
	epoch := c.epoch.Load()
	fk := flightKey{k: k, epoch: epoch}
	c.fmu.Lock()
	if call, ok := c.flight[fk]; ok {
		call.waiters++
		c.fmu.Unlock()
		call.wg.Wait()
		c.m.Coalesced.Inc()
		return call.res, call.aux, true, call.err
	}
	call := &flightCall{}
	call.wg.Add(1)
	c.flight[fk] = call
	c.fmu.Unlock()

	var store bool
	call.res, call.aux, store, call.err = fn()
	if call.err == nil && store {
		c.Put(k, epoch, call.res)
	}

	c.fmu.Lock()
	delete(c.flight, fk)
	c.fmu.Unlock()
	call.wg.Done()
	return call.res, call.aux, false, call.err
}
