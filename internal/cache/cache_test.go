package cache

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"cardpi/internal/obs"
)

func k(hi, lo uint64) Key { return Key{Hi: hi, Lo: lo} }

func res(v float64) Result {
	return Result{Est: v, Lo: v / 2, Hi: v * 2, TrueRows: int64(v), HasTruth: true}
}

func TestCacheGetPut(t *testing.T) {
	c := New(Config{Entries: 64, Shards: 2})
	if _, ok := c.Get(k(1, 1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k(1, 1), c.Epoch().Load(), res(3))
	got, ok := c.Get(k(1, 1))
	if !ok || got != res(3) {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, res(3))
	}
	if _, ok := c.Get(k(1, 2)); ok {
		t.Fatal("hit for a different key")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Same-key overwrite replaces in place.
	c.Put(k(1, 1), c.Epoch().Load(), res(5))
	if got, _ := c.Get(k(1, 1)); got != res(5) {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", c.Len())
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	c := New(Config{Entries: 64, Shards: 1})
	e := c.Epoch().Load()
	c.Put(k(1, 1), e, res(3))
	c.Invalidate()
	if _, ok := c.Get(k(1, 1)); ok {
		t.Fatal("stale-epoch entry served after Invalidate")
	}
	// A fill tagged with the pre-bump epoch must be dropped.
	c.Put(k(2, 2), e, res(4))
	if _, ok := c.Get(k(2, 2)); ok {
		t.Fatal("pre-bump fill accepted after Invalidate")
	}
	// Fresh fills under the new epoch work.
	c.Put(k(1, 1), c.Epoch().Load(), res(7))
	if got, ok := c.Get(k(1, 1)); !ok || got != res(7) {
		t.Fatalf("post-bump fill not served: %+v ok=%v", got, ok)
	}
}

func TestCacheSharedEpochAcrossCaches(t *testing.T) {
	e := new(Epoch)
	a := New(Config{Entries: 32, Epoch: e})
	b := New(Config{Entries: 32, Epoch: e})
	a.Put(k(1, 1), e.Load(), res(1))
	b.Put(k(2, 2), e.Load(), res(2))
	a.Invalidate() // bumps the shared clock
	if _, ok := b.Get(k(2, 2)); ok {
		t.Fatal("shared-epoch bump did not invalidate the sibling cache")
	}
}

func TestCacheEvictionLRUWithinSet(t *testing.T) {
	// One shard, one set (ways entries): force set pressure and check the
	// least-recently-touched entry goes first.
	c := New(Config{Entries: ways, Shards: 1})
	if c.Cap() != ways {
		t.Fatalf("Cap = %d, want %d", c.Cap(), ways)
	}
	e := c.Epoch().Load()
	for i := 0; i < ways; i++ {
		c.Put(k(0, uint64(i)<<8), e, res(float64(i+1))) // same set (Hi=0), distinct keys
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := c.Get(k(0, 0)); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(k(0, uint64(ways)<<8), e, res(100))
	if _, ok := c.Get(k(0, 0)); !ok {
		t.Fatal("recently touched entry was evicted")
	}
	if _, ok := c.Get(k(0, 1<<8)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if got, ok := c.Get(k(0, uint64(ways)<<8)); !ok || got != res(100) {
		t.Fatal("newly filled entry missing after eviction")
	}
}

func TestCacheMetricsAccounting(t *testing.T) {
	m := NewMetrics(newTestRegistry(t))
	c := New(Config{Entries: ways, Shards: 1, Metrics: m})
	e := c.Epoch().Load()
	c.Get(k(9, 9)) // miss
	c.Put(k(9, 9), e, res(1))
	c.Get(k(9, 9)) // hit
	if m.Hits.Value() != 1 || m.Misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", m.Hits.Value(), m.Misses.Value())
	}
	if m.Size.Value() != 1 {
		t.Fatalf("size=%d, want 1", m.Size.Value())
	}
	// Fill the single set and overflow it: one eviction.
	for i := 1; i < ways+1; i++ {
		c.Put(k(0, uint64(i)<<8|9), e, res(float64(i)))
	}
	if m.Evictions.Value() == 0 {
		t.Fatal("no eviction counted after overflowing the set")
	}
	// Epoch bump then read a stale entry (the freshest fill is guaranteed
	// to have survived the evictions): epoch invalidation + size drop.
	size := m.Size.Value()
	c.Invalidate()
	c.Get(k(0, uint64(ways)<<8|9))
	if m.EpochInvalidations.Value() != 1 {
		t.Fatalf("epoch invalidations=%d, want 1", m.EpochInvalidations.Value())
	}
	if m.Size.Value() != size-1 {
		t.Fatalf("size=%d after stale reclaim, want %d", m.Size.Value(), size-1)
	}
}

func TestCacheDoCoalesces(t *testing.T) {
	m := NewMetrics(newTestRegistry(t))
	c := New(Config{Entries: 64, Metrics: m})
	const n = 16
	var calls atomic.Int64
	inFn := make(chan struct{})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]Result, n)
	run := func(i int) {
		defer wg.Done()
		r, _, _, err := c.Do(k(1, 1), func() (Result, uint64, bool, error) {
			calls.Add(1)
			close(inFn)
			<-gate // hold the flight open while the followers pile on
			return res(42), 7, true, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[i] = r
	}
	wg.Add(1)
	go run(0)
	<-inFn // the leader is inside fn; its flight is registered
	for i := 1; i < n; i++ {
		wg.Add(1)
		go run(i)
	}
	// Wait until every follower is provably blocked on the flight, then
	// release the leader — this makes "exactly one estimator call" a
	// deterministic assertion, not a scheduling accident.
	for c.Waiters(k(1, 1)) != n-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d estimator calls for %d concurrent misses; want exactly 1", got, n)
	}
	if m.Coalesced.Value() != n-1 {
		t.Fatalf("coalesced=%d, want %d", m.Coalesced.Value(), n-1)
	}
	for i := range results {
		if results[i] != res(42) {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
	}
	// The leader stored the result: next Get hits.
	if _, ok := c.Get(k(1, 1)); !ok {
		t.Fatal("coalesced result was not cached")
	}
}

func TestCacheDoErrorAndNoStore(t *testing.T) {
	c := New(Config{Entries: 64})
	boom := errors.New("boom")
	_, _, _, err := c.Do(k(1, 1), func() (Result, uint64, bool, error) {
		return Result{}, 0, true, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get(k(1, 1)); ok {
		t.Fatal("errored result was cached")
	}
	r, aux, _, err := c.Do(k(1, 1), func() (Result, uint64, bool, error) {
		return res(5), 3, false, nil // e.g. a degraded (depth>0) answer
	})
	if err != nil || r != res(5) || aux != 3 {
		t.Fatalf("Do = %+v aux=%d err=%v", r, aux, err)
	}
	if _, ok := c.Get(k(1, 1)); ok {
		t.Fatal("store=false result was cached")
	}
}

func TestCacheDoMidFlightInvalidation(t *testing.T) {
	c := New(Config{Entries: 64})
	inFn := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _, _ = c.Do(k(1, 1), func() (Result, uint64, bool, error) {
			close(inFn)
			<-gate
			return res(1), 0, true, nil
		})
	}()
	<-inFn
	c.Invalidate() // the chain swapped while the leader was computing
	close(gate)
	<-done
	if _, ok := c.Get(k(1, 1)); ok {
		t.Fatal("result computed under the old epoch was stored past the bump")
	}
	// And a post-bump Do must elect a fresh leader, not adopt the stale
	// flight's result.
	r, _, shared, err := c.Do(k(1, 1), func() (Result, uint64, bool, error) {
		return res(2), 0, true, nil
	})
	if err != nil || shared || r != res(2) {
		t.Fatalf("post-bump Do = %+v shared=%v err=%v", r, shared, err)
	}
}

func TestCacheGetAllocs(t *testing.T) {
	c := New(Config{Entries: 256})
	key := k(3, 3)
	c.Put(key, c.Epoch().Load(), res(9))
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get(key); !ok {
			panic("lost entry")
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v times per run; want 0", n)
	}
}

// TestCacheConcurrentChurn races fills, reads, and epoch bumps; run under
// -race it proves the locking discipline, and the final sweep proves no
// pre-bump result survives the last bump.
func TestCacheConcurrentChurn(t *testing.T) {
	c := New(Config{Entries: 128, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				key := k(uint64(i%32), uint64(w)<<32|uint64(i%32))
				e := c.Epoch().Load()
				if _, ok := c.Get(key); !ok {
					c.Put(key, e, res(float64(e)))
				}
				if i%512 == 511 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
	c.Invalidate()
	// Every surviving entry is now stale by construction; all reads miss.
	for i := 0; i < 32; i++ {
		for w := 0; w < 4; w++ {
			if _, ok := c.Get(k(uint64(i), uint64(w)<<32|uint64(i))); ok {
				t.Fatal("stale entry survived the final bump")
			}
		}
	}
}

func newTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	return obs.NewRegistry()
}
