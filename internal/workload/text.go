package workload

import (
	"strconv"
	"strings"

	"cardpi/internal/dataset"
)

// QueryText renders a single-table query in the textual grammar ParseQuery
// accepts ("a = 5 AND b BETWEEN 2 AND 9"), so programmatically generated
// workloads can be replayed against the serve HTTP endpoints. Rendering a
// canonical query and re-parsing it round-trips exactly (see the
// canonical-form tests). Join queries have no textual grammar and render
// as the empty string.
func QueryText(q Query) string {
	if q.Join != nil {
		return ""
	}
	var sb strings.Builder
	for i, p := range q.Preds {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		sb.WriteString(p.Col)
		if p.Op == dataset.OpEq {
			sb.WriteString(" = ")
			sb.WriteString(strconv.FormatInt(p.Lo, 10))
			continue
		}
		sb.WriteString(" BETWEEN ")
		sb.WriteString(strconv.FormatInt(p.Lo, 10))
		sb.WriteString(" AND ")
		sb.WriteString(strconv.FormatInt(p.Hi, 10))
	}
	return sb.String()
}
