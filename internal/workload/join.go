package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cardpi/internal/dataset"
)

// JoinConfig controls templated join workload generation, mirroring the
// paper's DSB setup: a fixed number of SPJ templates (table subsets), each
// instantiated many times with data-anchored predicates.
type JoinConfig struct {
	// Count is the total number of distinct queries to generate.
	Count int
	// Templates is the number of distinct table-subset templates to use.
	// Zero means "as many as available".
	Templates int
	// MaxJoinTables bounds the number of non-center tables per template.
	MaxJoinTables int
	// MaxPredsPerTable bounds conjuncts per participating table.
	MaxPredsPerTable int
	// RangeFrac and WidthScale behave as in Config.
	RangeFrac  float64
	WidthScale float64
	// MaxSelectivity discards queries above this normalised selectivity.
	MaxSelectivity float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c JoinConfig) withDefaults() JoinConfig {
	if c.MaxJoinTables <= 0 {
		c.MaxJoinTables = 3
	}
	if c.MaxPredsPerTable <= 0 {
		c.MaxPredsPerTable = 2
	}
	if c.RangeFrac == 0 {
		c.RangeFrac = 0.8
	}
	if c.WidthScale <= 0 {
		c.WidthScale = 0.25
	}
	return c
}

// GenerateJoins produces a deduplicated labeled join workload over the
// schema. Each query's Norm is the cardinality of its template's unfiltered
// join, so selectivities are comparable across templates.
func GenerateJoins(s *dataset.Schema, cfg JoinConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: Count must be positive, got %d", cfg.Count)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	templates := enumerateTemplates(s, cfg.MaxJoinTables)
	if cfg.Templates > 0 && cfg.Templates < len(templates) {
		// Deterministic template subset: shuffle then truncate.
		r.Shuffle(len(templates), func(i, j int) { templates[i], templates[j] = templates[j], templates[i] })
		templates = templates[:cfg.Templates]
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("workload: schema yields no join templates")
	}

	norms := make([]int64, len(templates))
	for i, tmpl := range templates {
		n, err := s.MaxJoinCount(tmpl)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			n = 1
		}
		norms[i] = n
	}

	// Index satellite rows by their center key so predicates can be
	// anchored along one coherent join path: benchmark queries ask about
	// real entities, which is what makes cross-table correlations bite.
	satRows := make(map[string][][]int)
	for name, jt := range s.Joins {
		if jt.Rel != dataset.SatelliteOfCenter {
			continue
		}
		idx := make([][]int, s.Center.NumRows())
		fk := jt.Table.Column(jt.FKCol).Values
		for i, k := range fk {
			if k >= 0 && k < int64(len(idx)) {
				idx[k] = append(idx[k], i)
			}
		}
		satRows[name] = idx
	}

	seen := make(map[string]struct{}, cfg.Count)
	out := make([]Labeled, 0, cfg.Count)
	attempts := 0
	maxAttempts := cfg.Count*200 + 1000
	for len(out) < cfg.Count && attempts < maxAttempts {
		attempts++
		ti := len(out) % len(templates) // round-robin across templates
		tmpl := templates[ti]
		q, err := instantiateTemplate(r, s, tmpl, satRows, cfg)
		if err != nil {
			return nil, err
		}
		key := q.Key()
		if _, dup := seen[key]; dup {
			continue
		}
		card, err := s.JoinCount(*q.Join)
		if err != nil {
			return nil, err
		}
		sel := float64(card) / float64(norms[ti])
		if cfg.MaxSelectivity > 0 && sel > cfg.MaxSelectivity {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, Labeled{Query: q, Card: card, Sel: sel, Norm: norms[ti]})
	}
	if len(out) < cfg.Count {
		return nil, fmt.Errorf("workload: generated only %d of %d join queries", len(out), cfg.Count)
	}
	// NormN is the largest template norm; per-query Norm is authoritative.
	var maxNorm int64
	for _, n := range norms {
		if n > maxNorm {
			maxNorm = n
		}
	}
	return &Workload{Queries: out, Schema: s, NormN: maxNorm}, nil
}

// enumerateTemplates lists all non-empty subsets of the schema's join tables
// up to maxTables, in deterministic order.
func enumerateTemplates(s *dataset.Schema, maxTables int) [][]string {
	names := make([]string, 0, len(s.Joins))
	for n := range s.Joins {
		names = append(names, n)
	}
	sort.Strings(names)
	var out [][]string
	total := 1 << len(names)
	for mask := 1; mask < total; mask++ {
		var subset []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				subset = append(subset, n)
			}
		}
		if len(subset) <= maxTables {
			out = append(out, subset)
		}
	}
	return out
}

// instantiateTemplate fills a template with predicates anchored along one
// coherent join path: a random center row anchors the center's predicates,
// the dimension rows it references anchor dimension predicates, and one of
// its satellite rows anchors each satellite's predicates.
func instantiateTemplate(r *rand.Rand, s *dataset.Schema, tmpl []string,
	satRows map[string][][]int, cfg JoinConfig) (Query, error) {
	preds := make(map[string][]dataset.Predicate)
	wcfg := Config{RangeFrac: cfg.RangeFrac, WidthScale: cfg.WidthScale}.withDefaults()
	centerAnchor := r.Intn(s.Center.NumRows())

	addPreds := func(t *dataset.Table, anchor int) {
		k := 1 + r.Intn(cfg.MaxPredsPerTable)
		if k > t.NumCols() {
			k = t.NumCols()
		}
		picked := r.Perm(t.NumCols())[:k]
		var ps []dataset.Predicate
		for _, ci := range picked {
			col := t.Cols[ci]
			if isFKColumn(s, t, col.Name) {
				continue // never filter on join keys
			}
			ps = append(ps, makePredicate(r, col, anchor, wcfg))
		}
		if len(ps) > 0 {
			preds[t.Name] = ps
		}
	}

	anchorFor := func(name string) int {
		jt := s.Joins[name]
		switch jt.Rel {
		case dataset.DimOfCenter:
			return int(s.Center.Column(jt.FKCol).Values[centerAnchor])
		case dataset.SatelliteOfCenter:
			if rows := satRows[name][centerAnchor]; len(rows) > 0 {
				return rows[r.Intn(len(rows))]
			}
		}
		return r.Intn(jt.Table.NumRows())
	}

	// Predicates on the center with probability 0.7, plus each joined table
	// with probability 0.8 — some tables join without filters, as in DSB.
	if r.Float64() < 0.7 {
		addPreds(s.Center, centerAnchor)
	}
	for _, name := range tmpl {
		if r.Float64() < 0.8 {
			addPreds(s.Joins[name].Table, anchorFor(name))
		}
	}
	if len(preds) == 0 {
		// Guarantee at least one filter so the query is not the full join.
		addPreds(s.Joins[tmpl[0]].Table, anchorFor(tmpl[0]))
	}
	jq := &dataset.JoinQuery{Tables: append([]string(nil), tmpl...), Preds: preds}
	return Query{Join: jq}, nil
}

// isFKColumn reports whether col is a join-key column of t in the schema.
func isFKColumn(s *dataset.Schema, t *dataset.Table, col string) bool {
	for _, jt := range s.Joins {
		switch jt.Rel {
		case dataset.DimOfCenter:
			if t == s.Center && jt.FKCol == col {
				return true
			}
		case dataset.SatelliteOfCenter:
			if t == jt.Table && jt.FKCol == col {
				return true
			}
		}
	}
	return false
}
