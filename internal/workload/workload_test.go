package workload

import (
	"testing"

	"cardpi/internal/dataset"
)

func testTable(t *testing.T) *dataset.Table {
	t.Helper()
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGenerateBasics(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Queries) != 100 {
		t.Fatalf("got %d queries, want 100", len(wl.Queries))
	}
	seen := map[string]struct{}{}
	for _, lq := range wl.Queries {
		if lq.Card < 0 || lq.Sel < 0 || lq.Sel > 1 {
			t.Fatalf("bad label: card=%d sel=%v", lq.Card, lq.Sel)
		}
		if lq.Norm != int64(tab.NumRows()) {
			t.Fatalf("Norm = %d, want %d", lq.Norm, tab.NumRows())
		}
		// Labels must match the oracle.
		card, err := tab.Count(lq.Query.Preds)
		if err != nil {
			t.Fatal(err)
		}
		if card != lq.Card {
			t.Fatalf("label %d != oracle %d", lq.Card, card)
		}
		key := lq.Query.Key()
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate query %s", key)
		}
		seen[key] = struct{}{}
	}
}

func TestGenerateAnchoredQueriesNonEmpty(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 50, Seed: 3, MinPreds: 1, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, lq := range wl.Queries {
		if lq.Card > 0 {
			nonEmpty++
		}
	}
	// Data-anchored generation should make virtually all queries non-empty.
	if nonEmpty < 45 {
		t.Fatalf("only %d/50 queries non-empty", nonEmpty)
	}
}

func TestGenerateSelectivityBounds(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 60, Seed: 4, MaxSelectivity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		if lq.Sel > 0.1 {
			t.Fatalf("selectivity %v exceeds bound", lq.Sel)
		}
	}
	wl2, err := Generate(tab, Config{Count: 30, Seed: 5, MinSelectivity: 0.1, MaxPreds: 1, RangeFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl2.Queries {
		if lq.Sel < 0.1 {
			t.Fatalf("selectivity %v below bound", lq.Sel)
		}
	}
}

func TestGenerateColumnRestriction(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 40, Seed: 6, Columns: []string{"age", "sex"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		for _, p := range lq.Query.Preds {
			if p.Col != "age" && p.Col != "sex" {
				t.Fatalf("predicate on unexpected column %s", p.Col)
			}
		}
	}
	if _, err := Generate(tab, Config{Count: 5, Seed: 7, Columns: []string{"ghost"}}); err == nil {
		t.Fatal("expected error for unknown restricted column")
	}
}

func TestGenerateValidation(t *testing.T) {
	tab := testTable(t)
	if _, err := Generate(tab, Config{Count: 0}); err == nil {
		t.Fatal("Count=0 should fail")
	}
	if _, err := Generate(tab, Config{Count: 5, MinPreds: 5, MaxPreds: 2}); err == nil {
		t.Fatal("MinPreds>MaxPreds should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tab := testTable(t)
	a, err := Generate(tab, Config{Count: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tab, Config{Count: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Query.Key() != b.Queries[i].Query.Key() {
			t.Fatalf("nondeterministic generation at %d", i)
		}
	}
}

func TestSplit(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 100, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(1, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	seen := map[string]struct{}{}
	for _, p := range parts {
		total += len(p.Queries)
		for _, q := range p.Queries {
			key := q.Query.Key()
			if _, dup := seen[key]; dup {
				t.Fatalf("query appears in two splits")
			}
			seen[key] = struct{}{}
		}
	}
	if total != 100 {
		t.Fatalf("splits cover %d queries, want 100", total)
	}

	if _, err := wl.Split(1, 0.7, 0.7); err == nil {
		t.Fatal("fractions summing > 1 should fail")
	}
	if _, err := wl.Split(1, -0.5); err == nil {
		t.Fatal("negative fraction should fail")
	}
}

func TestSubsetAndSelectivities(t *testing.T) {
	tab := testTable(t)
	wl, err := Generate(tab, Config{Count: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sub := wl.Subset(5)
	if len(sub.Queries) != 5 {
		t.Fatalf("Subset(5) has %d queries", len(sub.Queries))
	}
	if len(wl.Subset(1000).Queries) != 20 {
		t.Fatal("Subset should clamp to workload size")
	}
	sels := wl.Selectivities()
	if len(sels) != 20 || sels[0] != wl.Queries[0].Sel {
		t.Fatal("Selectivities mismatch")
	}
}

func TestQueryKeyCanonical(t *testing.T) {
	p1 := dataset.Predicate{Col: "a", Op: dataset.OpEq, Lo: 1}
	p2 := dataset.Predicate{Col: "b", Op: dataset.OpRange, Lo: 0, Hi: 5}
	q1 := Query{Preds: []dataset.Predicate{p1, p2}}
	q2 := Query{Preds: []dataset.Predicate{p2, p1}}
	if q1.Key() != q2.Key() {
		t.Fatal("Key should be order-invariant")
	}
	if q1.IsJoin() {
		t.Fatal("single-table query reported as join")
	}
}

func TestGenerateJoinsDSB(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 1500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := GenerateJoins(sch, JoinConfig{Count: 60, Templates: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Queries) != 60 {
		t.Fatalf("got %d join queries", len(wl.Queries))
	}
	templates := map[string]struct{}{}
	for _, lq := range wl.Queries {
		if !lq.Query.IsJoin() {
			t.Fatal("expected join query")
		}
		// Label must match oracle and Norm relation must hold.
		card, err := sch.JoinCount(*lq.Query.Join)
		if err != nil {
			t.Fatal(err)
		}
		if card != lq.Card {
			t.Fatalf("label %d != oracle %d", lq.Card, card)
		}
		if got := lq.Sel * float64(lq.Norm); got < float64(lq.Card)-0.5 || got > float64(lq.Card)+0.5 {
			t.Fatalf("Sel*Norm = %v, want %d", got, lq.Card)
		}
		kt := ""
		for _, tn := range lq.Query.Join.Tables {
			kt += tn + ","
		}
		templates[kt] = struct{}{}
	}
	if len(templates) != 5 {
		t.Fatalf("used %d templates, want 5", len(templates))
	}
}

func TestGenerateJoinsJOB(t *testing.T) {
	sch, err := dataset.GenerateJOB(dataset.GenConfig{Rows: 400, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := GenerateJoins(sch, JoinConfig{Count: 40, Seed: 15, MaxJoinTables: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		if len(lq.Query.Join.Tables) > 2 {
			t.Fatalf("template has %d tables, want <= 2", len(lq.Query.Join.Tables))
		}
		// Join keys must never be filtered.
		for tname, preds := range lq.Query.Join.Preds {
			for _, p := range preds {
				if p.Col == "mi_movie_id" || p.Col == "ci_movie_id" ||
					p.Col == "mc_movie_id" || p.Col == "mk_movie_id" {
					t.Fatalf("predicate on join key %s.%s", tname, p.Col)
				}
			}
		}
	}
}

func TestGenerateJoinsValidation(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 300, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateJoins(sch, JoinConfig{Count: 0}); err == nil {
		t.Fatal("Count=0 should fail")
	}
}
