// Package workload generates labeled query workloads for cardinality
// estimation experiments. It implements a unified generator in the style of
// Wang et al. ("Are we ready for learned cardinality estimation?"): queries
// are centred on data tuples so they hit non-empty regions, mix point and
// range predicates, and can be filtered to selectivity bands. It also
// produces templated select-project-join workloads over star schemas for the
// DSB- and JOB-style multi-table experiments, and provides the
// train/calibration/test splitting used by the conformal methods.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cardpi/internal/dataset"
	"cardpi/internal/par"
)

// Query is a conjunctive query: either single-table (Preds over the base
// table) or multi-table (Join non-nil; Preds unused).
type Query struct {
	Preds []dataset.Predicate
	Join  *dataset.JoinQuery
}

// IsJoin reports whether the query is multi-table.
func (q Query) IsJoin() bool { return q.Join != nil }

// Key returns a canonical string identity for duplicate elimination.
func (q Query) Key() string {
	var sb strings.Builder
	writePreds := func(preds []dataset.Predicate) {
		ps := make([]string, len(preds))
		for i, p := range preds {
			ps[i] = p.String()
		}
		sort.Strings(ps)
		sb.WriteString(strings.Join(ps, "&"))
	}
	if q.Join == nil {
		writePreds(q.Preds)
		return sb.String()
	}
	tables := append([]string(nil), q.Join.Tables...)
	sort.Strings(tables)
	sb.WriteString("J[" + strings.Join(tables, ",") + "]")
	names := make([]string, 0, len(q.Join.Preds))
	for n := range q.Join.Preds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sb.WriteString(";" + n + ":")
		writePreds(q.Join.Preds[n])
	}
	return sb.String()
}

// Labeled pairs a query with its ground-truth cardinality and normalised
// selectivity (cardinality divided by the relevant maximum: table size for
// single-table queries, unfiltered join size of the query's template for
// join queries).
type Labeled struct {
	Query Query
	Card  int64
	Sel   float64
	// Norm is the per-query normalisation constant: Card == Sel * Norm.
	Norm int64
}

// Workload is a labeled set of queries over one data source.
type Workload struct {
	Queries []Labeled
	// Table is the base table for single-table workloads (nil for joins).
	Table *dataset.Table
	// Schema is the star schema for join workloads (nil for single-table).
	Schema *dataset.Schema
	// NormN is the normalisation constant: true cardinality = Sel * NormN.
	NormN int64
}

// Config controls single-table workload generation.
type Config struct {
	// Count is the number of distinct queries to generate.
	Count int
	// MinPreds and MaxPreds bound the number of conjuncts per query.
	MinPreds, MaxPreds int
	// RangeFrac is the probability a numeric column gets a range predicate
	// rather than a point predicate. Categorical columns always get points.
	RangeFrac float64
	// MaxSelectivity discards queries above this selectivity (the paper
	// focuses on selectivity < 0.1 where PIs are informative). <=0 disables.
	MaxSelectivity float64
	// MinSelectivity discards queries below this selectivity. Used by the
	// high-selectivity experiment (Fig 5). <0 disables; 0 keeps empty
	// results.
	MinSelectivity float64
	// Columns restricts generation to the named columns (nil = all).
	// Used to build the non-exchangeable calibration/test pairs (Fig 11).
	Columns []string
	// WidthScale scales range predicate widths as a fraction of the domain;
	// widths are drawn uniformly in (0, WidthScale * domain]. Default 0.25.
	WidthScale float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MinPreds <= 0 {
		c.MinPreds = 1
	}
	if c.MaxPreds <= 0 {
		c.MaxPreds = 4
	}
	if c.WidthScale <= 0 {
		c.WidthScale = 0.25
	}
	if c.RangeFrac == 0 {
		c.RangeFrac = 0.8
	}
	return c
}

// Generate produces a deduplicated labeled workload over t.
func Generate(t *dataset.Table, cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: Count must be positive, got %d", cfg.Count)
	}
	if cfg.MinPreds > cfg.MaxPreds {
		return nil, fmt.Errorf("workload: MinPreds %d > MaxPreds %d", cfg.MinPreds, cfg.MaxPreds)
	}
	cols, err := selectColumns(t, cfg.Columns)
	if err != nil {
		return nil, err
	}
	if cfg.MaxPreds > len(cols) {
		cfg.MaxPreds = len(cols)
	}
	if cfg.MinPreds > cfg.MaxPreds {
		cfg.MinPreds = cfg.MaxPreds
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	n := t.NumRows()
	seen := make(map[string]struct{}, cfg.Count)
	out := make([]Labeled, 0, cfg.Count)
	attempts := 0
	maxAttempts := cfg.Count*200 + 1000

	// Candidate queries are drawn serially from the seeded RNG — the draws
	// never depend on labels, so the candidate sequence is exactly the one
	// the all-serial loop produced. Truth labeling (t.Count, the dominant
	// cost) then runs on a bounded worker pool over each batch, and
	// accept/dedupe decisions replay serially in candidate order: the
	// resulting workload is byte-identical to the serial generator's for
	// every seed, whatever the worker count.
	type candidate struct {
		q    Query
		key  string
		card int64
		err  error
	}
	for len(out) < cfg.Count && attempts < maxAttempts {
		batch := min(max(cfg.Count-len(out), 64), maxAttempts-attempts)
		cands := make([]candidate, batch)
		for b := range cands {
			attempts++
			k := cfg.MinPreds + r.Intn(cfg.MaxPreds-cfg.MinPreds+1)
			picked := r.Perm(len(cols))[:k]
			anchor := r.Intn(n)
			preds := make([]dataset.Predicate, 0, k)
			for _, ci := range picked {
				preds = append(preds, makePredicate(r, cols[ci], anchor, cfg))
			}
			cands[b].q = Query{Preds: preds}
		}
		par.ForEach(len(cands), func(b int) error {
			c := &cands[b]
			c.key = c.q.Key()
			c.card, c.err = t.Count(c.q.Preds)
			return nil
		})
		for b := range cands {
			if len(out) == cfg.Count {
				break
			}
			c := &cands[b]
			if _, dup := seen[c.key]; dup {
				continue
			}
			if c.err != nil {
				return nil, c.err
			}
			sel := float64(c.card) / float64(n)
			if cfg.MaxSelectivity > 0 && sel > cfg.MaxSelectivity {
				continue
			}
			if sel < cfg.MinSelectivity {
				continue
			}
			seen[c.key] = struct{}{}
			out = append(out, Labeled{Query: c.q, Card: c.card, Sel: sel, Norm: int64(n)})
		}
	}
	if len(out) < cfg.Count {
		return nil, fmt.Errorf("workload: generated only %d of %d queries after %d attempts; relax selectivity bounds",
			len(out), cfg.Count, attempts)
	}
	return &Workload{Queries: out, Table: t, NormN: int64(n)}, nil
}

func selectColumns(t *dataset.Table, names []string) ([]*dataset.Column, error) {
	if names == nil {
		return t.Cols, nil
	}
	cols := make([]*dataset.Column, 0, len(names))
	for _, name := range names {
		c := t.Column(name)
		if c == nil {
			return nil, fmt.Errorf("workload: table %q has no column %q", t.Name, name)
		}
		cols = append(cols, c)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("workload: empty column restriction")
	}
	return cols, nil
}

// makePredicate builds a predicate on col anchored at the value held by the
// anchor row, guaranteeing the query region is non-empty.
func makePredicate(r *rand.Rand, col *dataset.Column, anchor int, cfg Config) dataset.Predicate {
	v := col.Values[anchor]
	if col.Type == dataset.Categorical || r.Float64() >= cfg.RangeFrac {
		return dataset.Predicate{Col: col.Name, Op: dataset.OpEq, Lo: v}
	}
	width := int64(cfg.WidthScale * float64(col.DomainWidth()))
	if width < 1 {
		width = 1
	}
	w := 1 + r.Int63n(width)
	lo := v - r.Int63n(w+1)
	hi := lo + w
	if lo < col.Min {
		lo = col.Min
	}
	if hi > col.Max {
		hi = col.Max
	}
	return dataset.Predicate{Col: col.Name, Op: dataset.OpRange, Lo: lo, Hi: hi}
}

// Split partitions the workload into parts with the given fractions (must sum
// to <= 1; a final remainder part is appended if they sum to < 1 is NOT done —
// fractions define all parts). Queries are shuffled deterministically first.
func (w *Workload) Split(seed int64, fractions ...float64) ([]*Workload, error) {
	var sum float64
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("workload: non-positive split fraction %v", f)
		}
		sum += f
	}
	if sum > 1.0001 {
		return nil, fmt.Errorf("workload: split fractions sum to %v > 1", sum)
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(w.Queries))
	parts := make([]*Workload, len(fractions))
	start := 0
	for i, f := range fractions {
		size := int(f * float64(len(w.Queries)))
		if i == len(fractions)-1 && sum > 0.9999 {
			size = len(w.Queries) - start
		}
		qs := make([]Labeled, 0, size)
		for _, j := range idx[start : start+size] {
			qs = append(qs, w.Queries[j])
		}
		parts[i] = &Workload{Queries: qs, Table: w.Table, Schema: w.Schema, NormN: w.NormN}
		start += size
	}
	return parts, nil
}

// Subset returns a workload containing the first n queries.
func (w *Workload) Subset(n int) *Workload {
	if n > len(w.Queries) {
		n = len(w.Queries)
	}
	return &Workload{Queries: w.Queries[:n], Table: w.Table, Schema: w.Schema, NormN: w.NormN}
}

// Selectivities returns the selectivity of every query, in order.
func (w *Workload) Selectivities() []float64 {
	out := make([]float64, len(w.Queries))
	for i, q := range w.Queries {
		out[i] = q.Sel
	}
	return out
}
