package workload

import (
	"cardpi/internal/dataset"
)

// Canonicalize returns the canonical form of q: per column, all conjuncts
// are intersected into a single closed bound, a degenerate range
// (lo == hi) becomes an OpEq point predicate (Hi zeroed, matching the
// query parser's output), an empty intersection (lo > hi) becomes the
// canonical empty range [1, 0], and the resulting predicates are sorted by
// column name. ParseQuery already emits exactly this form, so parsed
// queries round-trip unchanged; Canonicalize exists for programmatically
// built queries, and is the normal form the cache key (internal/cache
// KeyOf) hashes — two queries share a cache entry iff their canonical
// forms are equal.
//
// Join queries get the same treatment per table; the table list and join
// template are left untouched. The input is never mutated.
func Canonicalize(q Query) Query {
	if q.Join == nil {
		return Query{Preds: CanonicalizePreds(nil, q.Preds)}
	}
	j := *q.Join
	j.Preds = make(map[string][]dataset.Predicate, len(q.Join.Preds))
	for t, preds := range q.Join.Preds {
		j.Preds[t] = CanonicalizePreds(nil, preds)
	}
	return Query{Join: &j}
}

// CanonicalizePreds appends the canonical form of preds to dst and returns
// the extended slice — the allocation-free building block behind
// Canonicalize and the cache key hash. With enough spare capacity in dst
// (len(preds) entries suffice: merging only shrinks the count) the call
// performs no heap allocations. dst and preds must not overlap.
func CanonicalizePreds(dst []dataset.Predicate, preds []dataset.Predicate) []dataset.Predicate {
	base := len(dst)
	for _, p := range preds {
		lo, hi := p.Lo, p.Hi
		if p.Op == dataset.OpEq {
			hi = lo
		}
		merged := false
		for i := base; i < len(dst); i++ {
			if dst[i].Col == p.Col {
				// Conjunction on one column: intersect the bounds.
				if lo > dst[i].Lo {
					dst[i].Lo = lo
				}
				if hi < dst[i].Hi {
					dst[i].Hi = hi
				}
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, dataset.Predicate{Col: p.Col, Op: dataset.OpRange, Lo: lo, Hi: hi})
		}
	}
	out := dst[base:]
	for i := range out {
		switch {
		case out[i].Lo > out[i].Hi:
			// Canonical empty range: every unsatisfiable conjunction maps
			// to the same representation so their cache keys collide (they
			// are all semantically "matches nothing").
			out[i] = dataset.Predicate{Col: out[i].Col, Op: dataset.OpRange, Lo: 1, Hi: 0}
		case out[i].Lo == out[i].Hi:
			out[i] = dataset.Predicate{Col: out[i].Col, Op: dataset.OpEq, Lo: out[i].Lo}
		}
	}
	// Insertion sort: predicate counts are tiny (the generator caps at the
	// column count) and sort.Slice would allocate a closure.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Col < out[j-1].Col; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return dst
}
