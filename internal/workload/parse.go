package workload

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"cardpi/internal/dataset"
)

// ParseQuery parses a SQL-ish conjunctive filter over one table into a
// Query. Accepted forms (keywords are case-insensitive; the optional
// "SELECT COUNT(*) FROM <table> WHERE" prefix is allowed and validated):
//
//	age = 30
//	age BETWEEN 20 AND 40
//	20 <= age AND age <= 40
//	age >= 20 AND age < 65 AND sex = 1
//
// Open-ended comparisons are closed using the column's domain bounds.
func ParseQuery(t *dataset.Table, input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	if err := p.header(t.Name); err != nil {
		return Query{}, err
	}
	resolve := func(table, col string) (*dataset.Column, string, error) {
		if table != "" && !strings.EqualFold(table, t.Name) {
			return nil, "", fmt.Errorf("workload: unknown table %q (query is over %q)", table, t.Name)
		}
		c := t.Column(col)
		if c == nil {
			return nil, "", fmt.Errorf("workload: table %q has no column %q", t.Name, col)
		}
		return c, t.Name, nil
	}
	preds, err := p.conjunction(resolve)
	if err != nil {
		return Query{}, err
	}
	return Query{Preds: preds[t.Name]}, nil
}

// ParseJoinQuery parses a SQL-ish select-project-join query over a star
// schema. The FROM clause lists the participating tables (the center table
// may be included or implied); predicates may qualify columns with a table
// name, and unqualified column names are resolved when unique across the
// participating tables. Join conditions are implicit (the schema's key
// edges), as in the templated workloads.
func ParseJoinQuery(s *dataset.Schema, input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	tables, err := p.joinHeader(s)
	if err != nil {
		return Query{}, err
	}
	participating := map[string]*dataset.Table{s.Center.Name: s.Center}
	var joined []string
	for _, name := range tables {
		if name == s.Center.Name {
			continue
		}
		jt, ok := s.Joins[name]
		if !ok {
			return Query{}, fmt.Errorf("workload: schema has no table %q", name)
		}
		participating[name] = jt.Table
		joined = append(joined, name)
	}
	resolve := func(table, col string) (*dataset.Column, string, error) {
		if table != "" {
			t, ok := participating[table]
			if !ok {
				return nil, "", fmt.Errorf("workload: table %q not in FROM clause", table)
			}
			c := t.Column(col)
			if c == nil {
				return nil, "", fmt.Errorf("workload: table %q has no column %q", table, col)
			}
			return c, table, nil
		}
		var found *dataset.Column
		var owner string
		for name, t := range participating {
			if c := t.Column(col); c != nil {
				if found != nil {
					return nil, "", fmt.Errorf("workload: column %q is ambiguous; qualify it", col)
				}
				found, owner = c, name
			}
		}
		if found == nil {
			return nil, "", fmt.Errorf("workload: no participating table has column %q", col)
		}
		return found, owner, nil
	}
	preds, err := p.conjunction(resolve)
	if err != nil {
		return Query{}, err
	}
	return Query{Join: &dataset.JoinQuery{Tables: joined, Preds: preds}}, nil
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString // 'quoted' or "quoted" literal, resolved via column dictionaries
	tokOp     // = <= >= < > ( ) , . *
)

type token struct {
	kind tokKind
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		ch := rune(input[i])
		switch {
		case unicode.IsSpace(ch):
			i++
		case ch == '(' || ch == ')' || ch == ',' || ch == '.' || ch == '*' || ch == '=':
			toks = append(toks, token{tokOp, string(ch)})
			i++
		case ch == '<' || ch == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, input[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(ch)})
				i++
			}
		case ch == '\'' || ch == '"':
			quote := byte(ch)
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("workload: unterminated string literal at position %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j]})
			i = j + 1
		case ch == '-' || unicode.IsDigit(ch):
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			if j == i+1 && ch == '-' {
				return nil, fmt.Errorf("workload: stray '-' at position %d", i)
			}
			toks = append(toks, token{tokNumber, input[i:j]})
			i = j
		case unicode.IsLetter(ch) || ch == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("workload: unexpected character %q at position %d", ch, i)
		}
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) acceptKeyword(kw string) bool {
	t, ok := p.peek()
	if ok && t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	t, ok := p.next()
	if !ok || t.kind != tokOp || t.text != op {
		return fmt.Errorf("workload: expected %q, got %q", op, t.text)
	}
	return nil
}

// header consumes an optional "SELECT COUNT(*) FROM <table> WHERE" prefix.
func (p *parser) header(tableName string) error {
	if !p.acceptKeyword("select") {
		return nil
	}
	if err := p.countStar(); err != nil {
		return err
	}
	if !p.acceptKeyword("from") {
		return fmt.Errorf("workload: expected FROM after SELECT COUNT(*)")
	}
	t, ok := p.next()
	if !ok || t.kind != tokIdent {
		return fmt.Errorf("workload: expected table name after FROM")
	}
	if !strings.EqualFold(t.text, tableName) {
		return fmt.Errorf("workload: query is over table %q, not %q", tableName, t.text)
	}
	if !p.acceptKeyword("where") {
		// A bare "SELECT COUNT(*) FROM t" has no predicates.
		if _, more := p.peek(); more {
			return fmt.Errorf("workload: expected WHERE")
		}
	}
	return nil
}

// joinHeader consumes "SELECT COUNT(*) FROM t1, t2, ... [WHERE]" (required
// for join queries — the FROM clause defines the template) and returns the
// table list.
func (p *parser) joinHeader(s *dataset.Schema) ([]string, error) {
	if !p.acceptKeyword("select") {
		return nil, fmt.Errorf("workload: join queries must start with SELECT COUNT(*) FROM ...")
	}
	if err := p.countStar(); err != nil {
		return nil, err
	}
	if !p.acceptKeyword("from") {
		return nil, fmt.Errorf("workload: expected FROM")
	}
	var tables []string
	for {
		t, ok := p.next()
		if !ok || t.kind != tokIdent {
			return nil, fmt.Errorf("workload: expected table name in FROM clause")
		}
		tables = append(tables, t.text)
		if nx, ok := p.peek(); ok && nx.kind == tokOp && nx.text == "," {
			p.pos++
			continue
		}
		break
	}
	if !p.acceptKeyword("where") {
		if _, more := p.peek(); more {
			return nil, fmt.Errorf("workload: expected WHERE")
		}
	}
	return tables, nil
}

func (p *parser) countStar() error {
	if !p.acceptKeyword("count") {
		return fmt.Errorf("workload: expected COUNT(*)")
	}
	if err := p.expectOp("("); err != nil {
		return err
	}
	if err := p.expectOp("*"); err != nil {
		return err
	}
	return p.expectOp(")")
}

// resolver maps (optional table qualifier, column name) to the column and
// its owning table name.
type resolver func(table, col string) (*dataset.Column, string, error)

// conjunction parses "pred AND pred AND ..." into per-table predicates,
// merging multiple constraints on the same column into one range.
func (p *parser) conjunction(resolve resolver) (map[string][]dataset.Predicate, error) {
	type bound struct {
		col    *dataset.Column
		table  string
		name   string
		lo, hi int64
	}
	bounds := make(map[string]*bound) // keyed table.col
	if _, any := p.peek(); !any {
		return map[string][]dataset.Predicate{}, nil
	}
	for {
		lo, hi, col, table, name, err := p.predicate(resolve)
		if err != nil {
			return nil, err
		}
		key := table + "." + name
		if b, seen := bounds[key]; seen {
			if lo > b.lo {
				b.lo = lo
			}
			if hi < b.hi {
				b.hi = hi
			}
		} else {
			bounds[key] = &bound{col: col, table: table, name: name, lo: lo, hi: hi}
		}
		if !p.acceptKeyword("and") {
			break
		}
	}
	if t, extra := p.peek(); extra {
		return nil, fmt.Errorf("workload: unexpected trailing token %q", t.text)
	}
	out := make(map[string][]dataset.Predicate)
	// Deterministic order: iterate tokens again is complex; sort keys.
	keys := make([]string, 0, len(bounds))
	for k := range bounds {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		b := bounds[k]
		pr := dataset.Predicate{Col: b.name, Op: dataset.OpRange, Lo: b.lo, Hi: b.hi}
		if b.lo == b.hi {
			pr = dataset.Predicate{Col: b.name, Op: dataset.OpEq, Lo: b.lo}
		}
		out[b.table] = append(out[b.table], pr)
	}
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// predicate parses one comparison and returns its closed range.
func (p *parser) predicate(resolve resolver) (lo, hi int64, col *dataset.Column, table, name string, err error) {
	t, ok := p.peek()
	if !ok {
		return 0, 0, nil, "", "", fmt.Errorf("workload: expected predicate")
	}
	if t.kind == tokNumber {
		// "20 <= age" or "20 < age" prefix form (possibly "20 <= age <= 40").
		p.pos++
		v, perr := strconv.ParseInt(t.text, 10, 64)
		if perr != nil {
			return 0, 0, nil, "", "", fmt.Errorf("workload: bad number %q", t.text)
		}
		op, ok := p.next()
		if !ok || op.kind != tokOp || (op.text != "<=" && op.text != "<") {
			return 0, 0, nil, "", "", fmt.Errorf("workload: expected <= or < after number")
		}
		col, table, name, err = p.columnRef(resolve)
		if err != nil {
			return 0, 0, nil, "", "", err
		}
		lo = v
		if op.text == "<" {
			lo = v + 1
		}
		hi = domainMax(col)
		// Optional chained upper bound: "... <= 40".
		if nx, ok := p.peek(); ok && nx.kind == tokOp && (nx.text == "<=" || nx.text == "<") {
			p.pos++
			nt, ok := p.next()
			if !ok || nt.kind != tokNumber {
				return 0, 0, nil, "", "", fmt.Errorf("workload: expected number after %q", nx.text)
			}
			u, perr := strconv.ParseInt(nt.text, 10, 64)
			if perr != nil {
				return 0, 0, nil, "", "", fmt.Errorf("workload: bad number %q", nt.text)
			}
			hi = u
			if nx.text == "<" {
				hi = u - 1
			}
		}
		return lo, hi, col, table, name, nil
	}

	// Column-first form.
	col, table, name, err = p.columnRef(resolve)
	if err != nil {
		return 0, 0, nil, "", "", err
	}
	if p.acceptKeyword("between") {
		a, err := p.number()
		if err != nil {
			return 0, 0, nil, "", "", err
		}
		if !p.acceptKeyword("and") {
			return 0, 0, nil, "", "", fmt.Errorf("workload: expected AND in BETWEEN")
		}
		b, err := p.number()
		if err != nil {
			return 0, 0, nil, "", "", err
		}
		return a, b, col, table, name, nil
	}
	op, ok := p.next()
	if !ok || op.kind != tokOp {
		return 0, 0, nil, "", "", fmt.Errorf("workload: expected comparison operator")
	}
	// String literal: only equality, resolved through the column dictionary
	// (columns loaded from CSV keep their original string values).
	if t, ok := p.peek(); ok && t.kind == tokString {
		p.pos++
		if op.text != "=" {
			return 0, 0, nil, "", "", fmt.Errorf("workload: string literals support only '='")
		}
		code, ok := col.Code(t.text)
		if !ok {
			return 0, 0, nil, "", "", fmt.Errorf("workload: column %q has no value %q", name, t.text)
		}
		return code, code, col, table, name, nil
	}
	v, err := p.number()
	if err != nil {
		return 0, 0, nil, "", "", err
	}
	switch op.text {
	case "=":
		return v, v, col, table, name, nil
	case "<=":
		return domainMin(col), v, col, table, name, nil
	case "<":
		return domainMin(col), v - 1, col, table, name, nil
	case ">=":
		return v, domainMax(col), col, table, name, nil
	case ">":
		return v + 1, domainMax(col), col, table, name, nil
	default:
		return 0, 0, nil, "", "", fmt.Errorf("workload: unsupported operator %q", op.text)
	}
}

// columnRef parses "[table .] column".
func (p *parser) columnRef(resolve resolver) (*dataset.Column, string, string, error) {
	t, ok := p.next()
	if !ok || t.kind != tokIdent {
		return nil, "", "", fmt.Errorf("workload: expected column name, got %q", t.text)
	}
	table, name := "", t.text
	if nx, ok := p.peek(); ok && nx.kind == tokOp && nx.text == "." {
		p.pos++
		ct, ok := p.next()
		if !ok || ct.kind != tokIdent {
			return nil, "", "", fmt.Errorf("workload: expected column after %q.", t.text)
		}
		table, name = t.text, ct.text
	}
	col, owner, err := resolve(table, name)
	if err != nil {
		return nil, "", "", err
	}
	return col, owner, name, nil
}

func (p *parser) number() (int64, error) {
	t, ok := p.next()
	if !ok || t.kind != tokNumber {
		return 0, fmt.Errorf("workload: expected number, got %q", t.text)
	}
	return strconv.ParseInt(t.text, 10, 64)
}

func domainMin(c *dataset.Column) int64 {
	if c.Type == dataset.Categorical {
		return 0
	}
	return c.Min
}

func domainMax(c *dataset.Column) int64 {
	if c.Type == dataset.Categorical {
		return c.DomainSize - 1
	}
	return c.Max
}
