package workload

import (
	"math/rand"
	"testing"

	"cardpi/internal/dataset"
)

// generateSerialReference is the seed repository's all-serial generator loop,
// preserved verbatim; TestGenerateMatchesSerialReference pins the batched
// parallel Generate to its output byte for byte.
func generateSerialReference(t *dataset.Table, cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	cols, err := selectColumns(t, cfg.Columns)
	if err != nil {
		return nil, err
	}
	if cfg.MaxPreds > len(cols) {
		cfg.MaxPreds = len(cols)
	}
	if cfg.MinPreds > cfg.MaxPreds {
		cfg.MinPreds = cfg.MaxPreds
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := t.NumRows()
	seen := make(map[string]struct{}, cfg.Count)
	out := make([]Labeled, 0, cfg.Count)
	attempts := 0
	maxAttempts := cfg.Count*200 + 1000
	for len(out) < cfg.Count && attempts < maxAttempts {
		attempts++
		k := cfg.MinPreds + r.Intn(cfg.MaxPreds-cfg.MinPreds+1)
		picked := r.Perm(len(cols))[:k]
		anchor := r.Intn(n)
		preds := make([]dataset.Predicate, 0, k)
		for _, ci := range picked {
			preds = append(preds, makePredicate(r, cols[ci], anchor, cfg))
		}
		q := Query{Preds: preds}
		key := q.Key()
		if _, dup := seen[key]; dup {
			continue
		}
		card, err := t.Count(preds)
		if err != nil {
			return nil, err
		}
		sel := float64(card) / float64(n)
		if cfg.MaxSelectivity > 0 && sel > cfg.MaxSelectivity {
			continue
		}
		if sel < cfg.MinSelectivity {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, Labeled{Query: q, Card: card, Sel: sel, Norm: int64(n)})
	}
	return &Workload{Queries: out, Table: t, NormN: int64(n)}, nil
}

func TestGenerateMatchesSerialReference(t *testing.T) {
	tb, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Count: 150, Seed: 5},
		{Count: 100, Seed: 9, MaxSelectivity: 0.1},
		{Count: 60, Seed: 2, MinPreds: 2, MaxPreds: 3, MinSelectivity: 0.0001},
	} {
		got, err := Generate(tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := generateSerialReference(tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Queries) != len(want.Queries) {
			t.Fatalf("cfg %+v: %d queries != serial %d", cfg, len(got.Queries), len(want.Queries))
		}
		for i := range got.Queries {
			g, w := got.Queries[i], want.Queries[i]
			if g.Query.Key() != w.Query.Key() || g.Card != w.Card || g.Sel != w.Sel || g.Norm != w.Norm {
				t.Fatalf("cfg %+v query %d: parallel %+v != serial %+v", cfg, i, g, w)
			}
		}
	}
}
