package workload

import (
	"reflect"
	"testing"

	"cardpi/internal/dataset"
)

func ceq(col string, v int64) dataset.Predicate {
	return dataset.Predicate{Col: col, Op: dataset.OpEq, Lo: v}
}

func crng(col string, lo, hi int64) dataset.Predicate {
	return dataset.Predicate{Col: col, Op: dataset.OpRange, Lo: lo, Hi: hi}
}

func TestCanonicalize(t *testing.T) {
	cases := []struct {
		name string
		in   []dataset.Predicate
		want []dataset.Predicate
	}{
		{"empty", nil, nil},
		{"single point", []dataset.Predicate{ceq("a", 5)}, []dataset.Predicate{ceq("a", 5)}},
		{"sorts by column",
			[]dataset.Predicate{ceq("c", 1), crng("a", 2, 9), ceq("b", 3)},
			[]dataset.Predicate{crng("a", 2, 9), ceq("b", 3), ceq("c", 1)}},
		{"degenerate range becomes point",
			[]dataset.Predicate{crng("a", 7, 7)},
			[]dataset.Predicate{ceq("a", 7)}},
		{"eq garbage Hi is zeroed",
			[]dataset.Predicate{{Col: "a", Op: dataset.OpEq, Lo: 5, Hi: 99}},
			[]dataset.Predicate{ceq("a", 5)}},
		{"duplicates collapse",
			[]dataset.Predicate{ceq("a", 5), ceq("a", 5)},
			[]dataset.Predicate{ceq("a", 5)}},
		{"same-column ranges intersect",
			[]dataset.Predicate{crng("a", 0, 10), crng("a", 5, 20)},
			[]dataset.Predicate{crng("a", 5, 10)}},
		{"intersection to a point",
			[]dataset.Predicate{crng("a", 0, 7), crng("a", 7, 20)},
			[]dataset.Predicate{ceq("a", 7)}},
		{"point inside range intersects",
			[]dataset.Predicate{crng("a", 0, 10), ceq("a", 4)},
			[]dataset.Predicate{ceq("a", 4)}},
		{"empty intersection normalises",
			[]dataset.Predicate{crng("a", 10, 2)},
			[]dataset.Predicate{crng("a", 1, 0)}},
		{"contradictory points normalise",
			[]dataset.Predicate{ceq("a", 3), ceq("a", 8)},
			[]dataset.Predicate{crng("a", 1, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := append([]dataset.Predicate(nil), tc.in...)
			got := Canonicalize(Query{Preds: tc.in}).Preds
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Canonicalize(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !reflect.DeepEqual(in, tc.in) {
				t.Fatal("Canonicalize mutated its input")
			}
		})
	}
}

// TestCanonicalizeIdempotent: canonical forms are fixed points, and the
// parser's output is already canonical (the serve path relies on this to
// hash parsed queries directly).
func TestCanonicalizeIdempotent(t *testing.T) {
	tab, err := dataset.GenerateForest(dataset.GenConfig{Rows: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Generate(tab, Config{Count: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		once := Canonicalize(lq.Query)
		twice := Canonicalize(once)
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("not idempotent for %v: %v vs %v", lq.Query.Preds, once.Preds, twice.Preds)
		}
		// Round-trip through the text form the serve endpoint parses.
		line := QueryText(lq.Query)
		parsed, err := ParseQuery(tab, line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if !reflect.DeepEqual(parsed, Canonicalize(parsed)) {
			t.Fatalf("parser output not canonical for %q: %v", line, parsed.Preds)
		}
	}
}

// TestCanonicalizeJoin canonicalizes per-table predicate lists and leaves
// the template intact.
func TestCanonicalizeJoin(t *testing.T) {
	j := &dataset.JoinQuery{
		Tables: []string{"fact", "dim"},
		Preds: map[string][]dataset.Predicate{
			"fact": {ceq("b", 2), crng("a", 1, 1)},
			"dim":  {crng("x", 0, 9), crng("x", 5, 20)},
		},
	}
	got := Canonicalize(Query{Join: j})
	if got.Join == j {
		t.Fatal("join struct was not copied")
	}
	if !reflect.DeepEqual(got.Join.Tables, j.Tables) {
		t.Fatal("table list changed")
	}
	if want := []dataset.Predicate{ceq("a", 1), ceq("b", 2)}; !reflect.DeepEqual(got.Join.Preds["fact"], want) {
		t.Fatalf("fact preds = %v, want %v", got.Join.Preds["fact"], want)
	}
	if want := []dataset.Predicate{crng("x", 5, 9)}; !reflect.DeepEqual(got.Join.Preds["dim"], want) {
		t.Fatalf("dim preds = %v, want %v", got.Join.Preds["dim"], want)
	}
}
