package workload

import (
	"strings"
	"testing"

	"cardpi/internal/dataset"
)

func parseTable(t *testing.T) *dataset.Table {
	t.Helper()
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestParseQueryForms(t *testing.T) {
	tab := parseTable(t)
	cases := []struct {
		in   string
		want []dataset.Predicate
	}{
		{"sex = 1", []dataset.Predicate{{Col: "sex", Op: dataset.OpEq, Lo: 1}}},
		{"age BETWEEN 20 AND 40", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 20, Hi: 40}}},
		{"20 <= age <= 40", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 20, Hi: 40}}},
		{"20 < age < 41", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 21, Hi: 40}}},
		{"age >= 20 AND age <= 40", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 20, Hi: 40}}},
		{"age <= 40", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 0, Hi: 40}}},
		{"age > 40", []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 41, Hi: 90}}},
		{"SELECT COUNT(*) FROM census WHERE sex = 0", []dataset.Predicate{{Col: "sex", Op: dataset.OpEq, Lo: 0}}},
		{"select count(*) from census", nil},
		{"age = 30 AND sex = 1 AND education = 2", []dataset.Predicate{
			{Col: "age", Op: dataset.OpEq, Lo: 30},
			{Col: "education", Op: dataset.OpEq, Lo: 2},
			{Col: "sex", Op: dataset.OpEq, Lo: 1},
		}},
	}
	for _, tc := range cases {
		q, err := ParseQuery(tab, tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if len(q.Preds) != len(tc.want) {
			t.Fatalf("%q: got %d predicates %v, want %d", tc.in, len(q.Preds), q.Preds, len(tc.want))
		}
		for i, w := range tc.want {
			g := q.Preds[i]
			if g.Col != w.Col || g.Op != w.Op || g.Lo != w.Lo || (w.Op == dataset.OpRange && g.Hi != w.Hi) {
				t.Fatalf("%q: predicate %d = %+v, want %+v", tc.in, i, g, w)
			}
		}
	}
}

func TestParseQueryMatchesOracle(t *testing.T) {
	tab := parseTable(t)
	q, err := ParseQuery(tab, "age BETWEEN 25 AND 45 AND sex = 1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.Count(q.Preds)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	age := tab.Column("age").Values
	sex := tab.Column("sex").Values
	for i := 0; i < tab.NumRows(); i++ {
		if age[i] >= 25 && age[i] <= 45 && sex[i] == 1 {
			want++
		}
	}
	if got != want {
		t.Fatalf("parsed query counts %d, want %d", got, want)
	}
}

func TestParseQueryErrors(t *testing.T) {
	tab := parseTable(t)
	bad := []string{
		"ghost = 1",
		"age ??",
		"age = ",
		"age BETWEEN 2",
		"SELECT COUNT(*) FROM other WHERE sex = 1",
		"age = 1 extra",
		"= 5",
		"age - 5",
		"20 = age",
	}
	for _, in := range bad {
		if _, err := ParseQuery(tab, in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestParseJoinQuery(t *testing.T) {
	sch, err := dataset.GenerateJOB(dataset.GenConfig{Rows: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseJoinQuery(sch,
		"SELECT COUNT(*) FROM title, cast_info WHERE kind_id = 1 AND cast_info.ci_role_id <= 4")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsJoin() {
		t.Fatal("expected join query")
	}
	if len(q.Join.Tables) != 1 || q.Join.Tables[0] != "cast_info" {
		t.Fatalf("joined tables = %v", q.Join.Tables)
	}
	// The parsed query must agree with the oracle.
	card, err := sch.JoinCount(*q.Join)
	if err != nil {
		t.Fatal(err)
	}
	manual := dataset.JoinQuery{
		Tables: []string{"cast_info"},
		Preds: map[string][]dataset.Predicate{
			"title":     {{Col: "kind_id", Op: dataset.OpEq, Lo: 1}},
			"cast_info": {{Col: "ci_role_id", Op: dataset.OpRange, Lo: 0, Hi: 4}},
		},
	}
	want, err := sch.JoinCount(manual)
	if err != nil {
		t.Fatal(err)
	}
	if card != want {
		t.Fatalf("parsed join counts %d, want %d", card, want)
	}
}

func TestParseJoinQueryErrors(t *testing.T) {
	sch, err := dataset.GenerateJOB(dataset.GenConfig{Rows: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"kind_id = 1", // join queries need the FROM clause
		"SELECT COUNT(*) FROM ghost WHERE kind_id = 1",
		"SELECT COUNT(*) FROM title, cast_info WHERE nope = 1",
		"SELECT COUNT(*) FROM title WHERE movie_info.mi_value = 1", // not in FROM
	}
	for _, in := range bad {
		if _, err := ParseJoinQuery(sch, in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
	// Ambiguity: mi_value exists only in movie_info, so unqualified works
	// when the table participates.
	q, err := ParseJoinQuery(sch, "SELECT COUNT(*) FROM title, movie_info WHERE mi_value <= 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Join.Preds["movie_info"]) != 1 {
		t.Fatalf("preds = %v", q.Join.Preds)
	}
}

func TestParseQueryStringLiterals(t *testing.T) {
	csv := "city,population\nspringfield,30000\nshelbyville,21000\nspringfield,29000\n"
	tab, err := dataset.FromCSV("cities", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(tab, "city = 'springfield' AND population >= 25000")
	if err != nil {
		t.Fatal(err)
	}
	n, err := tab.Count(q.Preds)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	// Double quotes work too.
	if _, err := ParseQuery(tab, `city = "shelbyville"`); err != nil {
		t.Fatal(err)
	}
	// Unknown values and non-equality operators fail clearly.
	if _, err := ParseQuery(tab, "city = 'nowhere'"); err == nil {
		t.Fatal("unknown string value should fail")
	}
	if _, err := ParseQuery(tab, "city <= 'springfield'"); err == nil {
		t.Fatal("string with range operator should fail")
	}
	if _, err := ParseQuery(tab, "city = 'unterminated"); err == nil {
		t.Fatal("unterminated literal should fail")
	}
}
