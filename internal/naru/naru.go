// Package naru implements a data-driven autoregressive cardinality
// estimator in the style of Naru (Yang et al., "Deep unsupervised
// cardinality estimation"). The joint distribution over columns is factored
// autoregressively, P(A1..Am) = Π P(Ai | A1..Ai-1), with one small neural
// conditional per column trained by maximum likelihood directly on the
// table's tuples — no query workload required. Range and point queries are
// answered with progressive sampling over the learned conditionals, exactly
// the Monte-Carlo integration scheme the paper attributes to Naru (and
// identifies as a source of underestimation for range queries, one of the
// error modes prediction intervals must capture).
//
// Wide numeric domains are discretised into equal-width bins for the
// density model; within-bin mass is treated as uniform when intersecting
// range predicates.
package naru

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"cardpi/internal/dataset"
	"cardpi/internal/nn"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// Config controls training and inference.
type Config struct {
	// Bins caps the vocabulary of each column; numeric domains wider than
	// Bins are discretised into Bins equal-width bins.
	Bins int
	// Hidden is the hidden layer width of each conditional net.
	Hidden int
	// Epochs over the (sub-sampled) tuples.
	Epochs int
	// BatchSize for Adam steps.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// RowsPerEpoch subsamples tuples each epoch (0 = all rows).
	RowsPerEpoch int
	// Samples is the number of progressive samples per query at inference.
	Samples int
	// Seed makes everything deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 64
	}
	if c.Hidden <= 0 {
		c.Hidden = 48
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	if c.Samples <= 0 {
		c.Samples = 200
	}
	return c
}

// colCodec maps column values to dense codes in [0, vocab).
type colCodec struct {
	col      *dataset.Column
	vocab    int
	binned   bool
	binWidth float64 // domain values per bin when binned
	min      int64
}

func newCodec(c *dataset.Column, maxBins int) colCodec {
	width := c.DomainWidth()
	min := c.Min
	if c.Type == dataset.Categorical {
		min = 0
	}
	if int(width) <= maxBins {
		return colCodec{col: c, vocab: int(width), min: min}
	}
	return colCodec{
		col: c, vocab: maxBins, binned: true, min: min,
		binWidth: float64(width) / float64(maxBins),
	}
}

// code maps a raw value to its vocabulary code.
func (cc colCodec) code(v int64) int {
	if !cc.binned {
		k := int(v - cc.min)
		if k < 0 {
			k = 0
		}
		if k >= cc.vocab {
			k = cc.vocab - 1
		}
		return k
	}
	k := int(float64(v-cc.min) / cc.binWidth)
	if k < 0 {
		k = 0
	}
	if k >= cc.vocab {
		k = cc.vocab - 1
	}
	return k
}

// overlap returns, for each code, the fraction of that code's value range
// intersecting [lo, hi] (assuming uniform mass within a bin); zero entries
// are omitted from the returned sparse map.
func (cc colCodec) overlap(lo, hi int64) map[int]float64 {
	out := make(map[int]float64)
	if hi < lo {
		return out
	}
	if !cc.binned {
		for v := lo; v <= hi; v++ {
			k := int(v - cc.min)
			if k >= 0 && k < cc.vocab {
				out[k] = 1
			}
		}
		return out
	}
	loK, hiK := cc.code(lo), cc.code(hi)
	for k := loK; k <= hiK; k++ {
		binLo := cc.min + int64(float64(k)*cc.binWidth)
		binHi := cc.min + int64(float64(k+1)*cc.binWidth) - 1
		oLo, oHi := lo, hi
		if binLo > oLo {
			oLo = binLo
		}
		if binHi < oHi {
			oHi = binHi
		}
		if oHi < oLo {
			continue
		}
		span := binHi - binLo + 1
		if span <= 0 {
			continue
		}
		out[k] = float64(oHi-oLo+1) / float64(span)
	}
	return out
}

// Model is a trained autoregressive density estimator over one table.
type Model struct {
	name    string
	table   *dataset.Table
	codecs  []colCodec
	nets    []*nn.Net // nets[i]: conditional for column i given columns < i
	prefix  []int     // prefix one-hot offsets per column
	samples int
	seed    int64
	// pool recycles inference scratch buffers across queries; its zero value
	// is ready, so both construction sites (training and the serialize
	// loader) get the batched sampling kernel for free.
	pool sync.Pool
}

// Train fits the autoregressive model on the table's tuples.
func Train(t *dataset.Table, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("naru: empty table")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{name: "naru", table: t, samples: cfg.Samples, seed: cfg.Seed}
	prefixDim := 0
	for _, c := range t.Cols {
		cc := newCodec(c, cfg.Bins)
		m.codecs = append(m.codecs, cc)
		m.prefix = append(m.prefix, prefixDim)
		in := prefixDim
		if in == 0 {
			in = 1 // constant input for the first column's marginal
		}
		m.nets = append(m.nets, nn.NewNet(r, in, cfg.Hidden, cc.vocab))
		prefixDim += cc.vocab
	}

	opt := nn.NewAdam(cfg.LR, m.nets...)
	trainRng := rand.New(rand.NewSource(cfg.Seed + 1))
	n := t.NumRows()
	rows := cfg.RowsPerEpoch
	if rows <= 0 || rows > n {
		rows = n
	}
	ts := m.newTrainScratch()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := trainRng.Perm(n)[:rows]
		for start := 0; start < rows; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > rows {
				end = rows
			}
			for _, ri := range perm[start:end] {
				m.trainRow(ri, ts)
			}
			opt.Step(end - start)
		}
	}
	return m, nil
}

// trainScratch holds the reusable buffers of the training hot loop: one
// nn.Scratch per per-column head, the shared prefix vector, the gradient
// buffer (sized for the largest vocabulary), and the constant first-column
// input. With it, trainRow performs zero steady-state heap allocations.
type trainScratch struct {
	scratch []*nn.Scratch
	prefix  []float64
	grad    []float64
	one     []float64
}

func (m *Model) newTrainScratch() *trainScratch {
	ts := &trainScratch{one: []float64{1}}
	maxVocab := 0
	for ci, net := range m.nets {
		ts.scratch = append(ts.scratch, net.NewScratch())
		maxVocab = max(maxVocab, m.codecs[ci].vocab)
	}
	ts.prefix = m.encodePrefix(nil)
	ts.grad = make([]float64, maxVocab)
	return ts
}

// trainRow accumulates gradients of the row's negative log-likelihood.
func (m *Model) trainRow(ri int, ts *trainScratch) {
	prefix := ts.prefix
	for i := range prefix {
		prefix[i] = 0
	}
	for ci := range m.codecs {
		in := ts.one
		if m.prefix[ci] > 0 {
			in = prefix[:m.prefix[ci]]
		}
		logits := m.nets[ci].ForwardScratch(in, ts.scratch[ci])
		target := m.codecs[ci].code(m.table.Cols[ci].Values[ri])
		grad := ts.grad[:len(logits)]
		nn.SoftmaxCrossEntropyTo(logits, target, grad)
		m.nets[ci].BackwardScratch(ts.scratch[ci], grad)
		prefix[m.prefix[ci]+target] = 1
	}
}

// encodePrefix allocates a zeroed prefix vector covering all columns.
func (m *Model) encodePrefix(_ []float64) []float64 {
	total := 0
	for _, cc := range m.codecs {
		total += cc.vocab
	}
	return make([]float64, total)
}

// Name implements estimator.Estimator.
func (m *Model) Name() string { return m.name }

// EstimateSelectivity implements estimator.Estimator via progressive
// sampling. The per-query RNG is seeded from the model seed and the query's
// canonical key, so estimates are deterministic and independent of call
// order. Join queries are unsupported by the single-table density model and
// report 0.
func (m *Model) EstimateSelectivity(q workload.Query) float64 {
	if q.IsJoin() {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(q.Key()))
	r := rand.New(rand.NewSource(m.seed ^ int64(h.Sum64())))
	est := m.progressiveSample(q.Preds, r)
	// Floor at one row, the paper's convention for zero estimates.
	if floor := 1 / float64(m.table.NumRows()); est < floor {
		est = floor
	}
	return est
}

// naruMinBlock is the smallest per-worker query block when the batch path
// shards: one progressive-sampling estimate costs hundreds of forward rows,
// so even tiny blocks amortise the fan-out.
const naruMinBlock = 2

// EstimateSelectivityBatch implements estimator.BatchEstimator: queries are
// sharded in contiguous blocks over the batch worker pool (par.RunBlocks),
// each block running the per-query progressive-sampling path. Every query's
// RNG is seeded from the model seed and the query's canonical key, so out[i]
// is bit-identical to EstimateSelectivity(qs[i]) for any worker count and
// independent of call order. Safe for concurrent use — the inference scratch
// comes from the model's internal pool.
func (m *Model) EstimateSelectivityBatch(qs []workload.Query, out []float64) {
	par.RunBlocks(len(qs), naruMinBlock, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = m.EstimateSelectivity(qs[i])
		}
		return nil
	})
}

// constraint is a per-column allowed-mass list, kept sorted by code for
// deterministic sampling.
type constraint struct {
	codes []int
	fracs []float64
}

func (m *Model) constraints(preds []dataset.Predicate) ([]constraint, int) {
	maps := make([]map[int]float64, len(m.codecs))
	last := -1
	for _, p := range preds {
		ci, ok := m.table.ColumnIndex(p.Col)
		if !ok {
			continue
		}
		lo, hi := p.Lo, p.Hi
		if p.Op == dataset.OpEq {
			hi = p.Lo
		}
		ov := m.codecs[ci].overlap(lo, hi)
		if maps[ci] == nil {
			maps[ci] = ov
		} else {
			// Conjunction on the same column: intersect masses.
			for k, f := range maps[ci] {
				if f2, ok := ov[k]; ok {
					if f2 < f {
						maps[ci][k] = f2
					}
				} else {
					delete(maps[ci], k)
				}
			}
		}
		if ci > last {
			last = ci
		}
	}
	cons := make([]constraint, len(m.codecs))
	for ci, mp := range maps {
		if mp == nil {
			continue
		}
		codes := make([]int, 0, len(mp))
		for k := range mp {
			codes = append(codes, k)
		}
		sort.Ints(codes)
		fracs := make([]float64, len(codes))
		for i, k := range codes {
			fracs[i] = mp[k]
		}
		cons[ci] = constraint{codes: codes, fracs: fracs}
	}
	return cons, last
}

// inferScratch holds the reusable buffers of the batched sampling kernel:
// the flat samples-by-prefix-width conditioning block, the packed input
// block handed to each conditional net, the per-sample running products,
// the alive-sample index list, and one nn batch scratch per column head.
type inferScratch struct {
	prefixes []float64
	inBuf    []float64
	prob     []float64
	rows     []int
	bs       []*nn.BatchScratch
}

func (m *Model) getScratch() *inferScratch {
	s, _ := m.pool.Get().(*inferScratch)
	if s == nil {
		s = &inferScratch{bs: make([]*nn.BatchScratch, len(m.nets))}
		for ci, net := range m.nets {
			s.bs[ci] = net.NewBatchScratch()
		}
	}
	return s
}

// progressiveSample estimates P(preds) as the mean over samples of the
// product of conditional allowed-mass terms, sampling a concrete value at
// every column up to the last constrained one. All Monte-Carlo samples
// advance through the columns together: each conditional net runs once per
// column over the whole alive-sample block (nn.ForwardBatch) instead of
// once per sample, and samples whose allowed mass hits zero are compacted
// out before the next column. Random draws happen column-major in alive-
// sample order, so the estimate differs (by Monte-Carlo noise only) from a
// per-sample walk, but remains deterministic per query.
func (m *Model) progressiveSample(preds []dataset.Predicate, r *rand.Rand) float64 {
	cons, last := m.constraints(preds)
	if last < 0 {
		return 1 // no predicates: full table
	}
	s := m.getScratch()
	defer m.pool.Put(s)

	n := m.samples
	// Only columns before `last` ever condition a later net, so the
	// per-sample prefix rows need just m.prefix[last] slots (one extra for
	// the degenerate last == 0 case where the width would be zero).
	w := m.prefix[last]
	if w == 0 {
		w = 1
	}
	if cap(s.prefixes) < n*w {
		s.prefixes = make([]float64, n*w)
	}
	s.prefixes = s.prefixes[:n*w]
	clear(s.prefixes)
	if cap(s.prob) < n {
		s.prob = make([]float64, n)
		s.rows = make([]int, n)
	}
	s.prob, s.rows = s.prob[:n], s.rows[:n]
	for i := range s.prob {
		s.prob[i] = 1
		s.rows[i] = i
	}

	alive := s.rows
	for ci := 0; ci <= last && len(alive) > 0; ci++ {
		// Pack the conditioning inputs of the alive samples into one flat
		// block. The first column's marginal takes the constant input 1.
		iw := m.prefix[ci]
		if iw == 0 {
			iw = 1
		}
		if cap(s.inBuf) < len(alive)*iw {
			s.inBuf = make([]float64, len(alive)*iw)
		}
		s.inBuf = s.inBuf[:len(alive)*iw]
		if m.prefix[ci] == 0 {
			for j := range s.inBuf {
				s.inBuf[j] = 1
			}
		} else {
			for j, row := range alive {
				copy(s.inBuf[j*iw:(j+1)*iw], s.prefixes[row*w:row*w+iw])
			}
		}
		logits := m.nets[ci].ForwardBatch(s.inBuf, len(alive), iw, s.bs[ci])
		vocab := m.codecs[ci].vocab

		na := 0
		for j, row := range alive {
			p := logits[j*vocab : (j+1)*vocab]
			nn.SoftmaxTo(p, p)
			var chosen int
			if cons[ci].codes == nil {
				chosen = sampleFrom(p, r)
			} else {
				var mass float64
				for i, k := range cons[ci].codes {
					mass += p[k] * cons[ci].fracs[i]
				}
				if mass <= 0 {
					s.prob[row] = 0
					continue // sample dead: drop it from later columns
				}
				s.prob[row] *= mass
				// Sample the next value among allowed codes, weighted by
				// p[k]*frac, to condition subsequent columns correctly.
				u := r.Float64() * mass
				var acc float64
				chosen = cons[ci].codes[len(cons[ci].codes)-1]
				for i, k := range cons[ci].codes {
					acc += p[k] * cons[ci].fracs[i]
					if u <= acc {
						chosen = k
						break
					}
				}
			}
			if ci < last {
				s.prefixes[row*w+m.prefix[ci]+chosen] = 1
			}
			alive[na] = row // stable compaction keeps draw order deterministic
			na++
		}
		alive = alive[:na]
	}

	var total float64
	for _, row := range alive {
		total += s.prob[row]
	}
	return total / float64(n)
}

func sampleFrom(p []float64, r *rand.Rand) int {
	u := r.Float64()
	var acc float64
	for i, v := range p {
		acc += v
		if u <= acc {
			return i
		}
	}
	return len(p) - 1
}
