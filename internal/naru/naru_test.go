package naru

import (
	"math"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/workload"
)

func smallConfig() Config {
	return Config{Bins: 32, Hidden: 48, Epochs: 8, Samples: 150, Seed: 1}
}

func TestTrainAndEstimatePointQueries(t *testing.T) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "naru" {
		t.Fatal("Name wrong")
	}
	// Single-column equality on the most frequent record_type: the learned
	// marginal should be close to the true frequency.
	counts := map[int64]int{}
	var top int64
	for _, v := range tab.Column("record_type").Values {
		counts[v]++
		if counts[v] > counts[top] {
			top = v
		}
	}
	truth := float64(counts[top]) / 3000
	q := workload.Query{Preds: []dataset.Predicate{{Col: "record_type", Op: dataset.OpEq, Lo: top}}}
	est := m.EstimateSelectivity(q)
	if qe := estimator.QError(est, truth); qe > 2 {
		t.Fatalf("marginal estimate %v vs truth %v (q-error %v)", est, truth, qe)
	}
}

func TestEstimateBetterThanUniform(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 100, Seed: 4, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var modelQ, constQ float64
	for _, lq := range wl.Queries {
		modelQ += math.Log(estimator.QError(m.EstimateSelectivity(lq.Query), lq.Sel))
		constQ += math.Log(estimator.QError(0.05, lq.Sel))
	}
	if modelQ >= constQ {
		t.Fatalf("naru mean log q-error %v not better than constant %v",
			modelQ/float64(len(wl.Queries)), constQ/float64(len(wl.Queries)))
	}
}

func TestRangeQuerySupport(t *testing.T) {
	tab, err := dataset.GenerateForest(dataset.GenConfig{Rows: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Full-domain range should estimate ~1.
	c := tab.Column("elevation")
	full := workload.Query{Preds: []dataset.Predicate{{Col: "elevation", Op: dataset.OpRange, Lo: c.Min, Hi: c.Max}}}
	if est := m.EstimateSelectivity(full); est < 0.95 {
		t.Fatalf("full-range estimate %v, want ~1", est)
	}
	// Narrow range should be far below 1.
	narrow := workload.Query{Preds: []dataset.Predicate{{Col: "elevation", Op: dataset.OpRange, Lo: 0, Hi: 10}}}
	if est := m.EstimateSelectivity(narrow); est > 0.2 {
		t.Fatalf("narrow-range estimate %v suspiciously high", est)
	}
}

func TestEmptyPredicateListIsFullTable(t *testing.T) {
	tab, err := dataset.GeneratePower(dataset.GenConfig{Rows: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Bins: 16, Hidden: 8, Epochs: 1, Samples: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if est := m.EstimateSelectivity(workload.Query{}); est != 1 {
		t.Fatalf("no predicates should estimate 1, got %v", est)
	}
}

func TestEstimateDeterministicPerQuery(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 800, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Bins: 16, Hidden: 12, Epochs: 2, Samples: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q1 := workload.Query{Preds: []dataset.Predicate{{Col: "age", Op: dataset.OpRange, Lo: 20, Hi: 40}}}
	q2 := workload.Query{Preds: []dataset.Predicate{{Col: "sex", Op: dataset.OpEq, Lo: 1}}}
	a := m.EstimateSelectivity(q1)
	// Interleave another query: estimates must not depend on call order.
	_ = m.EstimateSelectivity(q2)
	b := m.EstimateSelectivity(q1)
	if a != b {
		t.Fatalf("estimate depends on call order: %v vs %v", a, b)
	}
}

func TestJoinQueriesUnsupported(t *testing.T) {
	tab, err := dataset.GeneratePower(dataset.GenConfig{Rows: 300, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Bins: 8, Hidden: 8, Epochs: 1, Samples: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	jq := workload.Query{Join: &dataset.JoinQuery{}}
	if s := m.EstimateSelectivity(jq); s != 0 {
		t.Fatalf("join query should report 0, got %v", s)
	}
}

func TestCodecBinning(t *testing.T) {
	c := &dataset.Column{Name: "x", Type: dataset.Numeric, Min: 0, Max: 999}
	cc := newCodec(c, 10)
	if !cc.binned || cc.vocab != 10 {
		t.Fatalf("codec = %+v", cc)
	}
	if cc.code(0) != 0 || cc.code(999) != 9 {
		t.Fatalf("boundary codes wrong: %d, %d", cc.code(0), cc.code(999))
	}
	// Overlap of the full domain should sum bins with fraction 1.
	ov := cc.overlap(0, 999)
	if len(ov) != 10 {
		t.Fatalf("full overlap has %d bins", len(ov))
	}
	for k, f := range ov {
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("bin %d fraction %v, want 1", k, f)
		}
	}
	// A half-bin overlap should be fractional.
	ov = cc.overlap(0, 49)
	if f := ov[0]; math.Abs(f-0.5) > 0.02 {
		t.Fatalf("half-bin overlap %v, want ~0.5", f)
	}
	// Inverted range is empty.
	if len(cc.overlap(10, 5)) != 0 {
		t.Fatal("inverted range should have no overlap")
	}
}

func TestCodecSmallDomainUnbinned(t *testing.T) {
	c := &dataset.Column{Name: "x", Type: dataset.Categorical, DomainSize: 5, Max: 4}
	cc := newCodec(c, 64)
	if cc.binned || cc.vocab != 5 {
		t.Fatalf("codec = %+v", cc)
	}
	ov := cc.overlap(1, 3)
	if len(ov) != 3 || ov[1] != 1 || ov[3] != 1 {
		t.Fatalf("overlap = %v", ov)
	}
}

func TestTrainValidation(t *testing.T) {
	empty := dataset.MustNewTable("t", []*dataset.Column{
		{Name: "a", Type: dataset.Categorical, Values: []int64{}, DomainSize: 2, Max: 1},
	})
	if _, err := Train(empty, Config{}); err == nil {
		t.Fatal("empty table should fail")
	}
}
