package naru

import (
	"fmt"
	"io"

	"cardpi/internal/codec"
	"cardpi/internal/dataset"
	"cardpi/internal/nn"
)

// Model checkpointing. Layout:
//
//	magic "NARU" | bins:u32 | samples:u32 | seed:i64 | numCols:u32 |
//	per column: vocab:u32 | per column: conditional net
//
// The codecs are recomputed from the table at load time and validated
// against the stored vocabularies.

var modelMagic = [4]byte{'N', 'A', 'R', 'U'}

// WriteTo serialises the trained autoregressive model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := codec.NewWriter(w)
	cw.Raw(modelMagic[:])
	// bins is recoverable as the max vocab; store it explicitly anyway for
	// validation at load time.
	maxVocab := 0
	for _, cc := range m.codecs {
		if cc.vocab > maxVocab {
			maxVocab = cc.vocab
		}
	}
	cw.U32(uint32(maxVocab))
	cw.U32(uint32(m.samples))
	cw.I64(m.seed)
	cw.U32(uint32(len(m.codecs)))
	for _, cc := range m.codecs {
		cw.U32(uint32(cc.vocab))
	}
	if err := cw.Err(); err != nil {
		return cw.Len(), err
	}
	written := cw.Len()
	for _, net := range m.nets {
		n, err := net.WriteTo(w)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadModel deserialises a model written by WriteTo, binding it to the table
// it was trained on (the codecs are rebuilt and validated against the
// stored vocabularies).
func ReadModel(r io.Reader, t *dataset.Table) (*Model, error) {
	cr := codec.NewReader(r)
	var mg [4]byte
	cr.Raw(mg[:])
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("naru: reading magic: %w", err)
	}
	if mg != modelMagic {
		return nil, fmt.Errorf("naru: bad magic %q", mg)
	}
	bins := cr.U32()
	samples := cr.U32()
	seed := cr.I64()
	numCols := cr.U32()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("naru: reading header: %w", err)
	}
	if int(numCols) != t.NumCols() {
		return nil, fmt.Errorf("naru: model has %d columns, table has %d", numCols, t.NumCols())
	}

	m := &Model{name: "naru", table: t, samples: int(samples), seed: seed}
	prefixDim := 0
	for ci := 0; ci < int(numCols); ci++ {
		vocab := cr.U32()
		if err := cr.Err(); err != nil {
			return nil, fmt.Errorf("naru: reading vocab %d: %w", ci, err)
		}
		cc := newCodec(t.Cols[ci], int(bins))
		if cc.vocab != int(vocab) {
			return nil, fmt.Errorf("naru: column %d vocab mismatch: stored %d, table gives %d",
				ci, vocab, cc.vocab)
		}
		m.codecs = append(m.codecs, cc)
		m.prefix = append(m.prefix, prefixDim)
		prefixDim += cc.vocab
	}
	for ci := 0; ci < int(numCols); ci++ {
		net, err := nn.ReadNet(r)
		if err != nil {
			return nil, fmt.Errorf("naru: reading net %d: %w", ci, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}
