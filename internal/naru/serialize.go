package naru

import (
	"encoding/binary"
	"fmt"
	"io"

	"cardpi/internal/dataset"
	"cardpi/internal/nn"
)

// Model checkpointing. Layout:
//
//	magic "NARU" | bins:u32 | samples:u32 | seed:u64 | numCols:u32 |
//	per column: vocab:u32 | per column: conditional net
//
// The codecs are recomputed from the table at load time and validated
// against the stored vocabularies.

var modelMagic = [4]byte{'N', 'A', 'R', 'U'}

// WriteTo serialises the trained autoregressive model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var written int64
	if _, err := w.Write(modelMagic[:]); err != nil {
		return written, err
	}
	written += 4
	var buf [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		k, err := w.Write(buf[:4])
		written += int64(k)
		return err
	}
	// bins is recoverable as the max vocab; store it explicitly anyway for
	// validation at load time.
	maxVocab := 0
	for _, cc := range m.codecs {
		if cc.vocab > maxVocab {
			maxVocab = cc.vocab
		}
	}
	if err := writeU32(uint32(maxVocab)); err != nil {
		return written, err
	}
	if err := writeU32(uint32(m.samples)); err != nil {
		return written, err
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(m.seed))
	k, err := w.Write(buf[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	if err := writeU32(uint32(len(m.codecs))); err != nil {
		return written, err
	}
	for _, cc := range m.codecs {
		if err := writeU32(uint32(cc.vocab)); err != nil {
			return written, err
		}
	}
	for _, net := range m.nets {
		n, err := net.WriteTo(w)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadModel deserialises a model written by WriteTo, binding it to the table
// it was trained on (the codecs are rebuilt and validated against the
// stored vocabularies).
func ReadModel(r io.Reader, t *dataset.Table) (*Model, error) {
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, fmt.Errorf("naru: reading magic: %w", err)
	}
	if mg != modelMagic {
		return nil, fmt.Errorf("naru: bad magic %q", mg)
	}
	var buf [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	bins, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("naru: reading bins: %w", err)
	}
	samples, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("naru: reading samples: %w", err)
	}
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("naru: reading seed: %w", err)
	}
	seed := int64(binary.LittleEndian.Uint64(buf[:]))
	numCols, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("naru: reading column count: %w", err)
	}
	if int(numCols) != t.NumCols() {
		return nil, fmt.Errorf("naru: model has %d columns, table has %d", numCols, t.NumCols())
	}

	m := &Model{name: "naru", table: t, samples: int(samples), seed: seed}
	prefixDim := 0
	for ci := 0; ci < int(numCols); ci++ {
		vocab, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("naru: reading vocab %d: %w", ci, err)
		}
		cc := newCodec(t.Cols[ci], int(bins))
		if cc.vocab != int(vocab) {
			return nil, fmt.Errorf("naru: column %d vocab mismatch: stored %d, table gives %d",
				ci, vocab, cc.vocab)
		}
		m.codecs = append(m.codecs, cc)
		m.prefix = append(m.prefix, prefixDim)
		prefixDim += cc.vocab
	}
	for ci := 0; ci < int(numCols); ci++ {
		net, err := nn.ReadNet(r)
		if err != nil {
			return nil, fmt.Errorf("naru: reading net %d: %w", ci, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}
