package naru

import (
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func BenchmarkEstimate(b *testing.B) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := Train(tab, Config{Hidden: 32, Epochs: 2, Samples: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	q := workload.Query{Preds: []dataset.Predicate{
		{Col: "state", Op: dataset.OpEq, Lo: 3},
		{Col: "model_year", Op: dataset.OpRange, Lo: 40, Hi: 90},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateSelectivity(q)
	}
}
