package naru

import (
	"bytes"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func TestModelRoundTrip(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Bins: 16, Hidden: 12, Epochs: 2, Samples: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf, tab)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries {
		// Per-query deterministic sampling (seed + query hash) must make
		// the loaded model reproduce the original exactly.
		if m.EstimateSelectivity(lq.Query) != loaded.EstimateSelectivity(lq.Query) {
			t.Fatal("round-trip changed estimates")
		}
	}
}

func TestReadModelRejectsWrongTable(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Bins: 16, Hidden: 8, Epochs: 1, Samples: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.GeneratePower(dataset.GenConfig{Rows: 400, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf, other); err == nil {
		t.Fatal("mismatched table accepted")
	}
}
