package lwnn

import (
	"math"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/workload"
)

func trainSetup(t *testing.T) (*dataset.Table, *workload.Workload, *workload.Workload) {
	t.Helper()
	tab, err := dataset.GenerateForest(dataset.GenConfig{Rows: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(3, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return tab, parts[0], parts[1]
}

func TestTrainImprovesOverConstantGuess(t *testing.T) {
	tab, trainWL, testWL := trainSetup(t)
	m, err := Train(tab, trainWL, Config{Epochs: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var modelQ, constQ float64
	for _, lq := range testWL.Queries {
		est := m.EstimateSelectivity(lq.Query)
		modelQ += estimator.QError(est, lq.Sel)
		constQ += estimator.QError(0.05, lq.Sel)
	}
	if modelQ >= constQ {
		t.Fatalf("model mean q-error %v not better than constant guess %v",
			modelQ/float64(len(testWL.Queries)), constQ/float64(len(testWL.Queries)))
	}
}

func TestEstimatesInRange(t *testing.T) {
	tab, trainWL, testWL := trainSetup(t)
	m, err := Train(tab, trainWL, Config{Epochs: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range testWL.Queries {
		s := m.EstimateSelectivity(lq.Query)
		if s < 0 || s > 1 {
			t.Fatalf("selectivity %v out of range", s)
		}
	}
	if m.Name() != "lwnn" {
		t.Fatal("Name wrong")
	}
}

func TestQuantileVariantsBracket(t *testing.T) {
	tab, trainWL, testWL := trainSetup(t)
	lo, err := TrainQuantile(tab, trainWL, 0.05, Config{Epochs: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := TrainQuantile(tab, trainWL, 0.95, Config{Epochs: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The 95%-quantile model should predict above the 5% model for most
	// queries (pinball losses pull them apart).
	above := 0
	for _, lq := range testWL.Queries {
		if hi.EstimateSelectivity(lq.Query) >= lo.EstimateSelectivity(lq.Query) {
			above++
		}
	}
	if frac := float64(above) / float64(len(testWL.Queries)); frac < 0.8 {
		t.Fatalf("upper quantile above lower for only %v of queries", frac)
	}
	if lo.Name() == hi.Name() {
		t.Fatal("quantile models should carry tau in their names")
	}
}

func TestValidation(t *testing.T) {
	tab, trainWL, _ := trainSetup(t)
	if _, err := Train(tab, nil, Config{}); err == nil {
		t.Fatal("nil workload should fail")
	}
	if _, err := TrainQuantile(tab, trainWL, 1.5, Config{}); err == nil {
		t.Fatal("tau out of range should fail")
	}
}

func TestJoinQueriesUnsupported(t *testing.T) {
	tab, trainWL, _ := trainSetup(t)
	m, err := Train(tab, trainWL, Config{Epochs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	jq := workload.Query{Join: &dataset.JoinQuery{}}
	if s := m.EstimateSelectivity(jq); s != 0 {
		t.Fatalf("join query should report 0, got %v", s)
	}
}

func TestFeaturesVector(t *testing.T) {
	tab, _, _ := trainSetup(t)
	f, err := NewFeatures(tab, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.Query{Preds: []dataset.Predicate{
		{Col: "elevation", Op: dataset.OpRange, Lo: 100, Hi: 500},
	}}
	v := f.Vector(q)
	if len(v) != f.Dim() {
		t.Fatalf("vector length %d != Dim %d", len(v), f.Dim())
	}
	// The two heuristic-estimate features must be in [0, 1].
	for _, x := range v[len(v)-2:] {
		if x < 0 || x > 1 {
			t.Fatalf("heuristic feature %v out of [0,1]", x)
		}
	}
}

func TestEstimateSelectivityBatchMatchesSequential(t *testing.T) {
	tab, trainWL, testWL := trainSetup(t)
	m, err := Train(tab, trainWL, Config{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]workload.Query, 0, len(testWL.Queries)+1)
	for _, lq := range testWL.Queries {
		qs = append(qs, lq.Query)
	}
	// Interleave a join query: it must report 0 without disturbing the
	// packed rows of its neighbours.
	qs = append(qs, workload.Query{Join: &dataset.JoinQuery{}})
	got := make([]float64, len(qs))
	m.EstimateSelectivityBatch(qs, got)
	for i, q := range qs {
		want := m.EstimateSelectivity(q)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("query %d: batch %v != sequential %v", i, got[i], want)
		}
	}
}
