package lwnn

import (
	"bytes"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func TestModelRoundTrip(t *testing.T) {
	tab, err := dataset.GenerateForest(dataset.GenConfig{Rows: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, wl, Config{Epochs: 3, Seed: 3, SampleSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The feature pipeline must be rebuilt identically (same table, sample
	// size and seed) for predictions to round-trip exactly.
	features, err := NewFeatures(tab, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf, features)
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range wl.Queries[:10] {
		if m.EstimateSelectivity(lq.Query) != loaded.EstimateSelectivity(lq.Query) {
			t.Fatal("round-trip changed predictions")
		}
	}
}

func TestReadModelRejectsWrongPipeline(t *testing.T) {
	tab, err := dataset.GenerateForest(dataset.GenConfig{Rows: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, wl, Config{Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.GeneratePower(dataset.GenConfig{Rows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	features, err := NewFeatures(other, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf, features); err == nil {
		t.Fatal("mismatched pipeline accepted")
	}
}
