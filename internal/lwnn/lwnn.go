// Package lwnn implements the LW-NN estimator of Dutt et al. ("Selectivity
// estimation for range predicates using lightweight models"): a small neural
// network over heuristic features — per-column range fractions plus the
// log-estimates of cheap traditional estimators (attribute-value-independence
// histograms and a uniform row sample) — trained with MSE on
// log-selectivity. A pinball-loss variant provides the quantile regressors
// needed by conformalized quantile regression.
package lwnn

import (
	"fmt"
	"math/rand"
	"sync"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/histogram"
	"cardpi/internal/nn"
	"cardpi/internal/par"
	"cardpi/internal/sampling"
	"cardpi/internal/workload"
)

// Config controls training.
type Config struct {
	// Hidden lists the hidden layer sizes (default [64, 32]).
	Hidden []int
	// Epochs, BatchSize and LR are passed to the trainer.
	Epochs    int
	BatchSize int
	LR        float64
	// Workers selects nn.Fit's data-parallel kernel (see nn.TrainConfig);
	// 0 keeps the sequential path.
	Workers int
	// SampleSize is the row-sample size for the sampling feature.
	SampleSize int
	// Seed makes initialisation and training deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32}
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 1000
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	return c
}

// Features produces LW-NN's heuristic feature vectors for queries over one
// table. It is exported so the locally weighted conformal difficulty model
// can reuse the same featurisation.
type Features struct {
	feat    *estimator.Featurizer
	hist    *histogram.Estimator
	sampler *sampling.Estimator
}

// NewFeatures builds the feature pipeline (collects statistics, draws the
// sample).
func NewFeatures(t *dataset.Table, sampleSize int, seed int64) (*Features, error) {
	s, err := sampling.New(t, sampleSize, seed)
	if err != nil {
		return nil, err
	}
	return &Features{
		feat:    estimator.NewFeaturizer(t),
		hist:    histogram.NewSingle(t, histogram.Config{}),
		sampler: s,
	}, nil
}

// Dim returns the feature vector length.
func (f *Features) Dim() int { return f.feat.Dim() + 2 }

// Vector featurises a query: the flat per-column encoding plus the
// normalised log-estimates of the histogram and sampling estimators.
func (f *Features) Vector(q workload.Query) []float64 {
	return f.AppendVector(q, make([]float64, 0, f.Dim()))
}

// AppendVector appends the Dim() feature values for q to dst and returns the
// extended slice — the allocation-free form of Vector for batch kernels that
// pack feature rows into one pooled flat block. Appended values are
// bit-identical to Vector(q); safe for concurrent use (the underlying
// statistics are read-only after construction).
func (f *Features) AppendVector(q workload.Query, dst []float64) []float64 {
	dst = f.feat.AppendFeaturize(q, dst)
	hs := f.hist.EstimateSelectivity(q)
	ss := f.sampler.EstimateSelectivity(q)
	// Normalise log-estimates to roughly [0, 1]: log(MinSel) ~ -26.
	norm := func(s float64) float64 { return 1 - estimator.LogSel(s)/estimator.LogSel(estimator.MinSel) }
	return append(dst, norm(hs), norm(ss))
}

// Model is a trained LW-NN estimator.
type Model struct {
	name     string
	features *Features
	net      *nn.Net
	// pool recycles batch scratch buffers across EstimateSelectivityBatch
	// calls; its zero value is ready, so every construction site (training
	// and the serialize loader) gets batching for free.
	pool sync.Pool
}

// lwBatchScratch is one reusable buffer set of the batched inference path:
// the packed feature block, the row-to-query mapping for join queries that
// bypass the net, and the nn batch scratch.
type lwBatchScratch struct {
	xs  []float64
	idx []int
	bs  *nn.BatchScratch
}

// lwMinBlock is the smallest per-worker query block when the batch kernel
// shards: LW-NN featurisation (two auxiliary estimators per query) plus the
// forward pass amortise the fan-out from roughly this size up.
const lwMinBlock = 16

// EstimateSelectivityBatch implements estimator.BatchEstimator: out[i] is
// bit-identical to EstimateSelectivity(qs[i]) (join queries report 0, as in
// the sequential path) for any worker count. The batch is sharded in
// contiguous query blocks over the batch worker pool (par.RunBlocks); each
// block worker packs its feature rows into one pooled flat block
// (AppendVector — no per-query allocation) and walks the net once over it,
// writing only its own rows of out. Safe for concurrent use and performs
// zero per-query heap allocations once the scratch pool is warm.
func (m *Model) EstimateSelectivityBatch(qs []workload.Query, out []float64) {
	par.RunBlocks(len(qs), lwMinBlock, func(lo, hi int) error {
		m.estimateBlock(qs[lo:hi], out[lo:hi])
		return nil
	})
}

// estimateBlock runs the batched kernel over one contiguous query block,
// writing exactly len(qs) results into out.
func (m *Model) estimateBlock(qs []workload.Query, out []float64) {
	if len(qs) == 0 {
		return
	}
	s, _ := m.pool.Get().(*lwBatchScratch)
	if s == nil {
		s = &lwBatchScratch{bs: m.net.NewBatchScratch()}
	}
	defer m.pool.Put(s)
	s.xs = s.xs[:0]
	s.idx = s.idx[:0]
	for i, q := range qs {
		if q.IsJoin() {
			out[i] = 0
			continue
		}
		s.xs = m.features.AppendVector(q, s.xs)
		s.idx = append(s.idx, i)
	}
	if len(s.idx) == 0 {
		return
	}
	res := m.net.ForwardBatch(s.xs, len(s.idx), m.features.Dim(), s.bs)
	for j, i := range s.idx {
		out[i] = estimator.SelFromLog(res[j])
	}
}

// Train fits LW-NN on a labeled workload with MSE loss on log-selectivity.
func Train(t *dataset.Table, wl *workload.Workload, cfg Config) (*Model, error) {
	return train(t, wl, nn.MSELoss{}, "lwnn", cfg)
}

// TrainQuantile fits the tau-quantile variant with pinball loss, used by
// CQR (tau = alpha/2 for the lower model, 1-alpha/2 for the upper).
func TrainQuantile(t *dataset.Table, wl *workload.Workload, tau float64, cfg Config) (*Model, error) {
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("lwnn: tau must be in (0,1), got %v", tau)
	}
	return train(t, wl, nn.PinballLoss{Tau: tau}, fmt.Sprintf("lwnn-q%.3f", tau), cfg)
}

func train(t *dataset.Table, wl *workload.Workload, loss nn.Loss, name string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if wl == nil || len(wl.Queries) == 0 {
		return nil, fmt.Errorf("lwnn: empty training workload")
	}
	features, err := NewFeatures(t, cfg.SampleSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Featurisation is per-query independent and read-only over the table
	// statistics; spread it over the worker pool.
	X := make([][]float64, len(wl.Queries))
	y := make([]float64, len(wl.Queries))
	par.ForEach(len(wl.Queries), func(i int) error {
		lq := wl.Queries[i]
		X[i] = features.Vector(lq.Query)
		y[i] = estimator.LogSel(lq.Sel)
		return nil
	})
	sizes := append([]int{features.Dim()}, cfg.Hidden...)
	sizes = append(sizes, 1)
	net := nn.NewNet(rand.New(rand.NewSource(cfg.Seed)), sizes...)
	if _, err := nn.Fit(net, X, y, loss, nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, LR: cfg.LR, Seed: cfg.Seed + 1,
		Workers: cfg.Workers,
	}); err != nil {
		return nil, err
	}
	return &Model{name: name, features: features, net: net}, nil
}

// Name implements estimator.Estimator.
func (m *Model) Name() string { return m.name }

// EstimateSelectivity implements estimator.Estimator. LW-NN is a
// single-table model; join queries report selectivity 0.
func (m *Model) EstimateSelectivity(q workload.Query) float64 {
	if q.IsJoin() {
		return 0
	}
	return estimator.SelFromLog(m.net.Predict1(m.features.Vector(q)))
}
