package lwnn

import (
	"encoding/binary"
	"fmt"
	"io"

	"cardpi/internal/nn"
)

// Model checkpointing. Layout:
//
//	magic "LWNN" | nameLen:u32 name | net
//
// The feature pipeline (statistics + sample) is rebuilt from the table by
// the caller at load time; the stored network's input dimension is validated
// against it.

var modelMagic = [4]byte{'L', 'W', 'N', 'N'}

// WriteTo serialises the trained model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var written int64
	if _, err := w.Write(modelMagic[:]); err != nil {
		return written, err
	}
	written += 4
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(m.name)))
	k, err := w.Write(buf[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	k, err = io.WriteString(w, m.name)
	written += int64(k)
	if err != nil {
		return written, err
	}
	n, err := m.net.WriteTo(w)
	written += n
	return written, err
}

// ReadModel deserialises a model written by WriteTo, binding it to a
// freshly built feature pipeline over the same table.
func ReadModel(r io.Reader, features *Features) (*Model, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("lwnn: reading magic: %w", err)
	}
	if m != modelMagic {
		return nil, fmt.Errorf("lwnn: bad magic %q", m)
	}
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("lwnn: reading name length: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(buf[:])
	if nameLen > 256 {
		return nil, fmt.Errorf("lwnn: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBytes); err != nil {
		return nil, fmt.Errorf("lwnn: reading name: %w", err)
	}
	net, err := nn.ReadNet(r)
	if err != nil {
		return nil, fmt.Errorf("lwnn: reading net: %w", err)
	}
	if got := net.Layers[0].In; got != features.Dim() {
		return nil, fmt.Errorf("lwnn: model expects feature dim %d, pipeline has %d", got, features.Dim())
	}
	return &Model{name: string(nameBytes), features: features, net: net}, nil
}
