package lwnn

import (
	"fmt"
	"io"

	"cardpi/internal/codec"
	"cardpi/internal/nn"
)

// Model checkpointing. Layout:
//
//	magic "LWNN" | name:string | net
//
// The feature pipeline (statistics + sample) is rebuilt from the table by
// the caller at load time; the stored network's input dimension is validated
// against it.

var modelMagic = [4]byte{'L', 'W', 'N', 'N'}

// maxNameLen bounds the stored model name.
const maxNameLen = 256

// WriteTo serialises the trained model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := codec.NewWriter(w)
	cw.Raw(modelMagic[:])
	cw.String(m.name)
	if err := cw.Err(); err != nil {
		return cw.Len(), err
	}
	n, err := m.net.WriteTo(w)
	return cw.Len() + n, err
}

// ReadModel deserialises a model written by WriteTo, binding it to a
// freshly built feature pipeline over the same table.
func ReadModel(r io.Reader, features *Features) (*Model, error) {
	cr := codec.NewReader(r)
	var m [4]byte
	cr.Raw(m[:])
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("lwnn: reading magic: %w", err)
	}
	if m != modelMagic {
		return nil, fmt.Errorf("lwnn: bad magic %q", m)
	}
	name := cr.String(maxNameLen)
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("lwnn: reading name: %w", err)
	}
	net, err := nn.ReadNet(r)
	if err != nil {
		return nil, fmt.Errorf("lwnn: reading net: %w", err)
	}
	if got := net.Layers[0].In; got != features.Dim() {
		return nil, fmt.Errorf("lwnn: model expects feature dim %d, pipeline has %d", got, features.Dim())
	}
	return &Model{name: name, features: features, net: net}, nil
}
