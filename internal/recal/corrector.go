// Package recal closes the drift loop for a serving chain: it maintains a
// rolling window of recently observed labeled queries, and when the Adaptive
// drift monitor alarms it runs a background shadow recalibration — fit a
// lightweight TiCard-style residual corrector over the frozen model's
// estimates, rebuild split-conformal calibration scores from the window,
// validate the candidate chain on a held-out slice, and hand the accepted
// candidate to a caller-supplied atomic swap. Every error path fails closed:
// the old chain keeps serving, the episode retries with exponential backoff,
// and an exhausted episode parks in a Failed state that the next drift
// observation re-arms.
//
// The package sits below the root cardpi package in the import graph, so its
// candidate types satisfy cardpi.Estimator and cardpi.PI structurally (the
// same pattern internal/faultinject uses): cardpi.Interval and
// cardpi.Estimator are aliases for the internal/conformal and
// internal/estimator types used here.
//
// All units are normalised selectivities in [0, 1] unless a name says rows.
package recal

import (
	"fmt"
	"math"

	"cardpi/internal/conformal"
	"cardpi/internal/estimator"
	"cardpi/internal/workload"
)

// Corrector fit/apply constants. The slope clamp keeps a corrector fitted on
// a narrow selectivity band from extrapolating wildly outside it; the
// log-space epsilon floors zero selectivities the same way the conformal
// scores do.
const (
	correctorEps      = 1e-12
	correctorMinSlope = 0.25
	correctorMaxSlope = 4.0
	// MinFitSamples is the smallest sample count FitCorrector accepts; below
	// it a least-squares slope is noise.
	MinFitSamples = 8
)

// Corrector is a log-space affine residual correction over a frozen model's
// selectivity estimates, in the spirit of TiCard's EXPLAIN-only correction
// layer: corrected = exp(A + B·log(est)). It is a function of the estimate
// alone — fitting and applying it needs no access to the model internals or
// the table, which is what makes it cheap enough to be the fast layer of a
// drift response. The zero value (A=0, B=0) is NOT the identity; use
// Identity for a pass-through.
type Corrector struct {
	// A is the intercept in log-selectivity space (a pure multiplicative
	// factor exp(A) on the estimate when B=1).
	A float64
	// B is the slope in log-selectivity space, clamped by FitCorrector to
	// [0.25, 4] to bound extrapolation.
	B float64
}

// Identity returns the pass-through corrector (A=0, B=1).
func Identity() Corrector { return Corrector{A: 0, B: 1} }

// FitCorrector least-squares fits a log-space affine map from the frozen
// model's estimates to observed true selectivities: log(truth+eps) ≈
// A + B·log(est+eps). It needs at least MinFitSamples points, falls back to
// an intercept-only fit (B=1) when the estimates have degenerate variance
// (e.g. a constant-output degraded model), and errors if the inputs or the
// fitted parameters are non-finite. Inputs are normalised selectivities.
func FitCorrector(ests, truths []float64) (Corrector, error) {
	if len(ests) != len(truths) {
		return Corrector{}, fmt.Errorf("recal: fit inputs disagree: %d estimates, %d truths", len(ests), len(truths))
	}
	if len(ests) < MinFitSamples {
		return Corrector{}, fmt.Errorf("recal: %d fit samples, need at least %d", len(ests), MinFitSamples)
	}
	n := float64(len(ests))
	var sx, sy float64
	xs := make([]float64, len(ests))
	ys := make([]float64, len(ests))
	for i := range ests {
		x := math.Log(math.Max(ests[i], 0) + correctorEps)
		y := math.Log(math.Max(truths[i], 0) + correctorEps)
		if !isFinite(x) || !isFinite(y) {
			return Corrector{}, fmt.Errorf("recal: non-finite fit sample %d (est=%v truth=%v)", i, ests[i], truths[i])
		}
		xs[i], ys[i] = x, y
		sx += x
		sy += y
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	c := Identity()
	if sxx/n < 1e-12 {
		// Degenerate estimate variance: slope is unidentifiable, keep B=1 and
		// absorb the mean residual into the intercept.
		c.A = my - mx
	} else {
		c.B = sxy / sxx
		if c.B < correctorMinSlope {
			c.B = correctorMinSlope
		} else if c.B > correctorMaxSlope {
			c.B = correctorMaxSlope
		}
		c.A = my - c.B*mx
	}
	if !isFinite(c.A) || !isFinite(c.B) {
		return Corrector{}, fmt.Errorf("recal: fitted corrector is non-finite (A=%v B=%v)", c.A, c.B)
	}
	return c, nil
}

// Apply maps a raw model estimate through the correction and clamps the
// result to the valid selectivity domain [0, 1]. Non-finite inputs map to
// the estimator floor rather than propagating.
func (c Corrector) Apply(est float64) float64 {
	if !isFinite(est) {
		return estimator.MinSel
	}
	out := math.Exp(c.A + c.B*math.Log(math.Max(est, 0)+correctorEps))
	if !isFinite(out) || out < 0 {
		return estimator.MinSel
	}
	if out > 1 {
		return 1
	}
	return out
}

// Corrected wraps a frozen base estimator with a fitted Corrector. It
// satisfies cardpi.Estimator structurally. Safe for concurrent use as long
// as the base estimator is; the corrector itself is immutable.
type Corrected struct {
	base estimator.Estimator
	corr Corrector
}

// NewCorrected builds the corrected estimator; base must be non-nil.
func NewCorrected(base estimator.Estimator, corr Corrector) *Corrected {
	return &Corrected{base: base, corr: corr}
}

// Name identifies the corrected chain as "recal/<base>".
func (c *Corrected) Name() string { return "recal/" + c.base.Name() }

// EstimateSelectivity runs the base estimator and applies the correction;
// the result is always finite and in [0, 1].
func (c *Corrected) EstimateSelectivity(q workload.Query) float64 {
	return c.corr.Apply(c.base.EstimateSelectivity(q))
}

// CandidatePI is the prediction-interval head of a recalibration candidate:
// split-conformal intervals around the corrected estimates, calibrated on
// the rolling window. It satisfies cardpi.PI structurally. Immutable after
// construction, safe for concurrent use.
type CandidatePI struct {
	model *Corrected
	cp    *conformal.SplitCP
}

// Name identifies the candidate as "recal-cp/<base>".
func (p *CandidatePI) Name() string { return "recal-cp/" + p.model.base.Name() }

// Interval returns the calibrated interval for q's corrected estimate,
// clipped to the selectivity domain [0, 1]. It never errors; the error
// return exists to satisfy the PI contract.
func (p *CandidatePI) Interval(q workload.Query) (conformal.Interval, error) {
	return p.cp.Interval(p.model.EstimateSelectivity(q)).Clip(0, 1), nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
