package recal

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// --- corrector fitting ---

func TestFitCorrectorRecoversAffineBias(t *testing.T) {
	// truth = 2·est exactly: in log space that is A = log 2, B = 1.
	var ests, truths []float64
	for i := 1; i <= 40; i++ {
		e := float64(i) / 100 // 0.01 .. 0.40
		ests = append(ests, e)
		truths = append(truths, 2*e)
	}
	c, err := FitCorrector(ests, truths)
	if err != nil {
		t.Fatalf("FitCorrector: %v", err)
	}
	if math.Abs(c.B-1) > 0.01 {
		t.Errorf("slope B = %v, want ~1", c.B)
	}
	if math.Abs(c.A-math.Log(2)) > 0.01 {
		t.Errorf("intercept A = %v, want ~%v", c.A, math.Log(2))
	}
	for i, e := range ests {
		got := c.Apply(e)
		if math.Abs(got-truths[i]) > 0.005 {
			t.Fatalf("Apply(%v) = %v, want ~%v", e, got, truths[i])
		}
	}
}

func TestFitCorrectorDegenerateVariance(t *testing.T) {
	// Constant estimates: slope unidentifiable, fallback keeps B=1 and puts
	// the mean log-residual in the intercept.
	ests := make([]float64, 16)
	truths := make([]float64, 16)
	for i := range ests {
		ests[i] = 0.05
		truths[i] = 0.2
	}
	c, err := FitCorrector(ests, truths)
	if err != nil {
		t.Fatalf("FitCorrector: %v", err)
	}
	if c.B != 1 {
		t.Errorf("degenerate fit slope B = %v, want exactly 1", c.B)
	}
	if got := c.Apply(0.05); math.Abs(got-0.2) > 1e-6 {
		t.Errorf("Apply(0.05) = %v, want ~0.2", got)
	}
}

func TestFitCorrectorSlopeClamp(t *testing.T) {
	// truth = est^10 has log-space slope 10; the clamp must cap it at 4.
	var ests, truths []float64
	for i := 1; i <= 20; i++ {
		e := float64(i) / 25
		ests = append(ests, e)
		truths = append(truths, math.Pow(e, 10))
	}
	c, err := FitCorrector(ests, truths)
	if err != nil {
		t.Fatalf("FitCorrector: %v", err)
	}
	if c.B != correctorMaxSlope {
		t.Errorf("slope B = %v, want clamped to %v", c.B, correctorMaxSlope)
	}
}

func TestFitCorrectorErrors(t *testing.T) {
	good := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	if _, err := FitCorrector(good, good[:4]); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := FitCorrector(good[:4], good[:4]); err == nil {
		t.Error("too few samples: want error")
	}
	bad := append([]float64(nil), good...)
	bad[3] = math.NaN()
	if _, err := FitCorrector(bad, good); err == nil {
		t.Error("NaN estimate: want error")
	}
	bad[3] = math.Inf(1)
	if _, err := FitCorrector(bad, good); err == nil {
		t.Error("Inf estimate: want error")
	}
}

func TestCorrectorApplyClamps(t *testing.T) {
	if got := Identity().Apply(0.37); math.Abs(got-0.37) > 1e-9 {
		t.Errorf("identity Apply(0.37) = %v", got)
	}
	big := Corrector{A: 50, B: 1}
	if got := big.Apply(0.5); got != 1 {
		t.Errorf("overflowing correction = %v, want clamp to 1", got)
	}
	if got := Identity().Apply(math.NaN()); got != estimator.MinSel {
		t.Errorf("Apply(NaN) = %v, want floor %v", got, estimator.MinSel)
	}
	if got := Identity().Apply(math.Inf(1)); got != estimator.MinSel {
		t.Errorf("Apply(+Inf) = %v, want floor %v", got, estimator.MinSel)
	}
}

// --- supervisor helpers ---

// indexQuery encodes i into a query predicate so a Func base can derive a
// deterministic, per-sample estimate from the query alone.
func indexQuery(i int) workload.Query {
	return workload.Query{Preds: []dataset.Predicate{{Col: "x", Op: dataset.OpEq, Lo: int64(i)}}}
}

// indexBase reads indexQuery's payload back out: est = (i mod 90 + 1) / 200,
// spread over (0, 0.455] so the corrector has slope signal.
var indexBase = estimator.Func{N: "base", F: func(q workload.Query) float64 {
	return float64(q.Preds[0].Lo%90+1) / 200
}}

// fillWindow records n samples whose truth is a fixed multiplicative bias of
// the base estimate — exactly the regime the corrector is built to absorb.
func fillWindow(s *Supervisor, n int, bias float64) {
	for i := 0; i < n; i++ {
		q := indexQuery(i)
		truth := math.Min(1, bias*indexBase.F(q))
		s.Record(q, truth)
	}
}

// fillNoisyWindow is fillWindow with deterministic multiplicative noise on
// the truths, so the fitted corrector has real residuals and the conformal
// intervals have non-trivial width (the clean fill yields ~1e-11 widths).
func fillNoisyWindow(s *Supervisor, n int, bias float64) {
	for i := 0; i < n; i++ {
		q := indexQuery(i)
		truth := math.Min(1, bias*indexBase.F(q)*(1+0.4*math.Sin(float64(i))))
		s.Record(q, truth)
	}
}

// instantSleep records requested backoff durations and returns immediately.
type instantSleep struct {
	mu sync.Mutex
	ds []time.Duration
}

func (sl *instantSleep) sleep(_ context.Context, d time.Duration) error {
	sl.mu.Lock()
	sl.ds = append(sl.ds, d)
	sl.mu.Unlock()
	return nil
}

func (sl *instantSleep) durations() []time.Duration {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]time.Duration(nil), sl.ds...)
}

// testConfig is a small, fast supervisor config; override fields per test.
func testConfig(swap func(*Candidate) error) Config {
	return Config{
		Base:          indexBase,
		Alpha:         0.1,
		Window:        64,
		MinObserved:   32,
		MinValidation: 8,
		MaxAttempts:   3,
		Backoff:       100 * time.Millisecond,
		MaxBackoff:    time.Minute,
		NormN:         10000,
		Swap:          swap,
	}
}

// waitStatus polls until cond(Status) or the deadline; fails the test on
// timeout.
func waitStatus(t *testing.T, s *Supervisor, what string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Status()
		if cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; status %+v", what, s.Status())
	return Status{}
}

// --- supervisor construction ---

func TestNewConfigValidation(t *testing.T) {
	swap := func(*Candidate) error { return nil }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"missing base", func(c *Config) { c.Base = nil }},
		{"missing swap", func(c *Config) { c.Swap = nil }},
		{"alpha zero", func(c *Config) { c.Alpha = 0 }},
		{"alpha one", func(c *Config) { c.Alpha = 1 }},
		{"window below min observed", func(c *Config) { c.Window = 16 }},
		{"min observed below fit+validation", func(c *Config) { c.MinObserved = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(swap)
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted invalid config")
			}
		})
	}
	if _, err := New(testConfig(swap)); err != nil {
		t.Fatalf("New rejected valid config: %v", err)
	}
}

// --- window recording ---

func TestRecordDropsUnusableSamples(t *testing.T) {
	panicky := estimator.Func{N: "panicky", F: func(workload.Query) float64 { panic("boom") }}
	cfg := testConfig(func(*Candidate) error { return nil })
	cfg.Base = panicky
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Record(indexQuery(0), 0.5) // base panics
	cfg2 := testConfig(func(*Candidate) error { return nil })
	cfg2.Base = estimator.Func{N: "inf", F: func(workload.Query) float64 { return math.Inf(1) }}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Record(indexQuery(0), 0.5) // non-finite estimate
	s3, _ := New(testConfig(func(*Candidate) error { return nil }))
	s3.Record(indexQuery(0), math.NaN())   // non-finite truth
	s3.Record(indexQuery(0), math.Inf(-1)) // non-finite truth
	for i, sup := range []*Supervisor{s, s2, s3} {
		if got := sup.Status().Observed; got != 0 {
			t.Errorf("supervisor %d: observed %d unusable samples, want 0", i, got)
		}
	}
}

func TestRecordRingOverwrites(t *testing.T) {
	s, err := New(testConfig(func(*Candidate) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 200, 1)
	if got := s.Status().Observed; got != 64 {
		t.Errorf("observed = %d after 200 records into a 64-window, want 64", got)
	}
}

// --- candidate build + validation ---

func TestBuildCandidateInsufficientWindow(t *testing.T) {
	s, err := New(testConfig(func(*Candidate) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 10, 1) // below MinObserved = 32
	cand, err := s.BuildCandidate()
	if err != nil {
		t.Fatalf("BuildCandidate: %v", err)
	}
	if cand.Report.Accepted {
		t.Error("insufficient window produced an accepted candidate")
	}
	if cand.Report.Reason != ReasonInsufficient {
		t.Errorf("reason = %q, want %q", cand.Report.Reason, ReasonInsufficient)
	}
	if cand.PI != nil {
		t.Error("insufficient candidate should have no PI head")
	}
}

func TestBuildCandidateAcceptsCorrectableBias(t *testing.T) {
	s, err := New(testConfig(func(*Candidate) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 64, 2) // truth = 2·est: a pure bias the corrector absorbs
	cand, err := s.BuildCandidate()
	if err != nil {
		t.Fatalf("BuildCandidate: %v", err)
	}
	rep := cand.Report
	if !rep.Accepted {
		t.Fatalf("candidate rejected (%s): %+v", rep.Reason, rep)
	}
	if rep.Coverage < 1-0.1-0.05 {
		t.Errorf("held-out coverage %v below tolerance floor", rep.Coverage)
	}
	if rep.ValSamples < 8 || rep.FitSamples < MinFitSamples {
		t.Errorf("split too small: fit %d val %d", rep.FitSamples, rep.ValSamples)
	}
	if cand.Model == nil || cand.PI == nil || cand.Window == nil {
		t.Fatal("accepted candidate missing model, PI, or window snapshot")
	}
	if got := cand.Model.Name(); got != "recal/base" {
		t.Errorf("model name = %q", got)
	}
	if got := cand.PI.Name(); got != "recal-cp/base" {
		t.Errorf("PI name = %q", got)
	}
	if got := len(cand.Window.Queries); got != 64 {
		t.Errorf("window snapshot has %d queries, want 64", got)
	}
	// The corrected chain's intervals must be valid selectivities.
	iv, err := cand.PI.Interval(indexQuery(7))
	if err != nil {
		t.Fatalf("candidate Interval: %v", err)
	}
	if !(iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.Hi) {
		t.Errorf("candidate interval [%v, %v] outside [0, 1]", iv.Lo, iv.Hi)
	}
}

func TestBuildCandidateRejectsPathologicalWidth(t *testing.T) {
	cfg := testConfig(func(*Candidate) error { return nil })
	cfg.WidthCap = 1e-9
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillNoisyWindow(s, 64, 2)
	cand, err := s.BuildCandidate()
	if err != nil {
		t.Fatalf("BuildCandidate: %v", err)
	}
	if cand.Report.Accepted {
		t.Fatal("candidate accepted despite width cap of 1e-9")
	}
	if cand.Report.Reason != ReasonWidth {
		t.Errorf("reason = %q, want %q", cand.Report.Reason, ReasonWidth)
	}
}

// --- episode state machine ---

func TestEpisodeSuccessSwapsOnce(t *testing.T) {
	var mu sync.Mutex
	var swapped []*Candidate
	sl := &instantSleep{}
	cfg := testConfig(func(c *Candidate) error {
		mu.Lock()
		swapped = append(swapped, c)
		mu.Unlock()
		return nil
	})
	cfg.Sleep = sl.sleep
	cfg.Metrics = obs.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	s.Trigger()
	st := waitStatus(t, s, "swap", func(st Status) bool { return st.Swaps == 1 })
	if st.State != "idle" {
		t.Errorf("state after success = %q, want idle", st.State)
	}
	if st.Episodes != 1 || st.Attempts != 1 || st.Rejected != 0 || st.FailedEpisodes != 0 {
		t.Errorf("counters after clean success: %+v", st)
	}
	if st.LastCoverage < 0.85 {
		t.Errorf("last validation coverage %v < 0.85", st.LastCoverage)
	}
	if len(sl.durations()) != 0 {
		t.Errorf("first-attempt success slept %v", sl.durations())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(swapped) != 1 || !swapped[0].Report.Accepted {
		t.Fatalf("swap callback saw %d candidates", len(swapped))
	}
}

func TestEpisodeRejectionBacksOffExponentiallyThenFails(t *testing.T) {
	sl := &instantSleep{}
	swapCalls := 0
	cfg := testConfig(func(*Candidate) error { swapCalls++; return nil })
	cfg.WidthCap = 1e-9 // every candidate rejects on width
	cfg.Sleep = sl.sleep
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillNoisyWindow(s, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	s.Trigger()
	st := waitStatus(t, s, "failed episode", func(st Status) bool { return st.FailedEpisodes == 1 })
	if st.Swaps != 0 || swapCalls != 0 {
		t.Fatalf("rejected candidates reached the swap callback (%d swaps, %d calls)", st.Swaps, swapCalls)
	}
	if st.State != "failed" {
		t.Errorf("state = %q, want failed", st.State)
	}
	if st.Attempts != 3 || st.Rejected != 3 {
		t.Errorf("attempts %d rejected %d, want 3 and 3", st.Attempts, st.Rejected)
	}
	if st.LastReason != ReasonWidth {
		t.Errorf("last reason = %q, want %q", st.LastReason, ReasonWidth)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := sl.durations()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoff schedule %v, want %v (doubling)", got, want)
	}
}

func TestEpisodeSwapErrorRejectsAndRetries(t *testing.T) {
	sl := &instantSleep{}
	cfg := testConfig(func(*Candidate) error { return fmt.Errorf("chain refused the candidate") })
	cfg.Sleep = sl.sleep
	cfg.MaxAttempts = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	s.Trigger()
	st := waitStatus(t, s, "failed episode", func(st Status) bool { return st.FailedEpisodes == 1 })
	if st.Swaps != 0 {
		t.Errorf("swaps = %d after swap callback errors", st.Swaps)
	}
	if st.LastReason != ReasonSwap {
		t.Errorf("last reason = %q, want %q", st.LastReason, ReasonSwap)
	}
	if !strings.Contains(st.LastError, "refused") {
		t.Errorf("last error = %q, want the swap error surfaced", st.LastError)
	}
}

func TestDriftGateDropsKicksButTriggerBypasses(t *testing.T) {
	cfg := testConfig(func(*Candidate) error { return nil })
	cfg.Drifted = func() bool { return false }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillWindow(s, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	s.Kick()
	time.Sleep(30 * time.Millisecond)
	if got := s.Status().Episodes; got != 0 {
		t.Fatalf("gated kick started %d episodes", got)
	}
	s.Trigger() // forced: bypasses the drift gate
	waitStatus(t, s, "forced episode", func(st Status) bool { return st.Swaps == 1 })
}

func TestFailedEpisodeRearmsOnNextKick(t *testing.T) {
	sl := &instantSleep{}
	cfg := testConfig(func(*Candidate) error { return nil })
	cfg.WidthCap = 1e-9
	cfg.MaxAttempts = 1
	cfg.Sleep = sl.sleep
	cfg.Drifted = func() bool { return true } // drift persists
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillNoisyWindow(s, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	s.Kick()
	waitStatus(t, s, "first failed episode", func(st Status) bool { return st.FailedEpisodes == 1 })
	s.Kick() // level-triggered: the persistent alarm re-arms the failed episode
	st := waitStatus(t, s, "second episode", func(st Status) bool { return st.Episodes == 2 })
	if st.FailedEpisodes != 2 {
		t.Errorf("failed episodes = %d, want 2", st.FailedEpisodes)
	}
}
