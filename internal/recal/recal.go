package recal

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/estimator"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// State is the supervisor's episode state machine position. Transitions:
// Idle → Recalibrating on an armed kick; Recalibrating → Idle on a validated
// swap, → Backoff after a rejected attempt with attempts remaining, → Failed
// when the attempt budget is exhausted; Backoff → Recalibrating on retry;
// Failed → Recalibrating on the next kick (drift is level-triggered upstream,
// so a persistent episode re-arms itself).
type State int32

// Supervisor states, exported in the cardpi_recal_state gauge.
const (
	// StateIdle means no episode is running.
	StateIdle State = iota
	// StateRecalibrating means a candidate build/validation attempt is running.
	StateRecalibrating
	// StateBackoff means the last attempt was rejected and the supervisor is
	// sleeping before the next one.
	StateBackoff
	// StateFailed means an episode exhausted its attempt budget without an
	// accepted candidate; the old chain keeps serving until the next kick.
	StateFailed
)

// String renders the state for status endpoints and logs.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRecalibrating:
		return "recalibrating"
	case StateBackoff:
		return "backoff"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Rejection reasons, used as the reason label on
// cardpi_recal_rejected_total and in ValidationReport.Reason.
const (
	// ReasonInsufficient: the rolling window holds too few samples to fit and
	// validate a candidate.
	ReasonInsufficient = "insufficient"
	// ReasonCoverage: held-out coverage fell below 1−α−CoverageTol.
	ReasonCoverage = "coverage"
	// ReasonWidth: held-out mean interval width exceeded WidthCap.
	ReasonWidth = "width"
	// ReasonSwap: the candidate validated but the swap callback refused it.
	ReasonSwap = "swap"
	// ReasonError: fitting or calibration failed outright (degenerate data,
	// non-finite parameters, a panicking base model).
	ReasonError = "error"
)

// sample is one labeled observation in the rolling window: the query, the
// frozen base model's estimate at observation time, and the true selectivity.
type sample struct {
	q     workload.Query
	est   float64
	truth float64
}

// Config parameterises a Supervisor. Base, Alpha, and Swap are required;
// every zero-valued knob takes the documented default.
type Config struct {
	// Base is the frozen model whose estimates the corrector adjusts. Its
	// EstimateSelectivity must be safe for concurrent use.
	Base estimator.Estimator
	// Alpha is the target miscoverage rate of the candidate chain (interval
	// coverage target 1−Alpha). Must be in (0, 1).
	Alpha float64
	// Score is the nonconformity score for the rebuilt calibration set;
	// defaults to conformal.ResidualScore.
	Score conformal.Score
	// Window is the rolling-window capacity in labeled observations
	// (default 1024). Oldest samples are overwritten once full.
	Window int
	// MinObserved is the minimum window occupancy before a candidate is
	// attempted (default 256); below it attempts reject with
	// ReasonInsufficient.
	MinObserved int
	// MinValidation is the minimum held-out slice size (default 16).
	MinValidation int
	// CoverageTol is the tolerance below the 1−Alpha target the held-out
	// coverage may sit and still validate (default 0.05).
	CoverageTol float64
	// WidthCap rejects candidates whose mean held-out interval width exceeds
	// it — a chain that "covers" by answering [0, 1] is pathological, not
	// calibrated (default 0.9 in normalised selectivity).
	WidthCap float64
	// MaxAttempts bounds build/validate attempts per episode (default 5).
	MaxAttempts int
	// Backoff is the sleep after the first rejected attempt; it doubles per
	// attempt up to MaxBackoff (defaults 500ms and 30s).
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (default 30s).
	MaxBackoff time.Duration
	// NormN is the row count used to label the rebuilt window workload
	// (cardinality = selectivity × NormN).
	NormN int64
	// Drifted gates non-forced kicks: when non-nil and false at kick time,
	// the kick is dropped (the alarm cleared before the supervisor woke).
	Drifted func() bool
	// Swap atomically installs a validated candidate into the serving chain.
	// An error rejects the candidate (ReasonSwap) and the episode retries;
	// the old chain must keep serving on every return path. Required.
	Swap func(c *Candidate) error
	// Metrics, when non-nil, registers the cardpi_recal_* families
	// (OBSERVABILITY.md).
	Metrics *obs.Registry
	// Logf, when non-nil, receives one line per episode transition.
	Logf func(format string, args ...any)
	// Sleep is the backoff clock, injectable for tests; defaults to a
	// context-aware timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// ValidationReport is the held-out verdict on one candidate attempt.
type ValidationReport struct {
	// FitSamples is the number of window samples used to fit the corrector
	// and calibration scores.
	FitSamples int
	// ValSamples is the held-out slice size the verdict is computed on.
	ValSamples int
	// Coverage is the held-out empirical coverage in [0, 1] (NaN when the
	// attempt never reached validation).
	Coverage float64
	// MeanWidth is the held-out mean interval width in normalised
	// selectivity (NaN when the attempt never reached validation).
	MeanWidth float64
	// Accepted reports whether the candidate passed validation.
	Accepted bool
	// Reason is the Reason* constant explaining a rejection ("" when
	// accepted).
	Reason string
}

// Candidate is a fully built, validated (or rejected — check Report)
// recalibration candidate: the corrected estimator, its conformal interval
// head, and the window snapshot it was calibrated on (for seeding the
// adaptive monitor after a swap).
type Candidate struct {
	// Model is the corrected estimator; satisfies cardpi.Estimator.
	Model *Corrected
	// PI is the split-conformal head over Model; satisfies cardpi.PI. Nil
	// when the candidate was rejected before calibration.
	PI *CandidatePI
	// Window is the rolling-window snapshot as a labeled workload, for
	// reseeding the adaptive monitor's online calibration set.
	Window *workload.Workload
	// Report is the held-out validation verdict.
	Report ValidationReport
}

// Status is a point-in-time snapshot of the supervisor for /admin/recal.
// NaN gauges are sanitised to -1 so the snapshot always JSON-encodes.
type Status struct {
	// State is the episode state machine position ("idle", "recalibrating",
	// "backoff", "failed").
	State string `json:"state"`
	// Observed is the current rolling-window occupancy.
	Observed int `json:"observed"`
	// Window is the rolling-window capacity.
	Window int `json:"window"`
	// Episodes counts drift episodes started.
	Episodes int `json:"episodes"`
	// Attempts counts candidate build/validate attempts across episodes.
	Attempts int `json:"attempts"`
	// Swaps counts validated candidates atomically swapped into serving.
	Swaps int `json:"swaps"`
	// Rejected counts rejected candidate attempts.
	Rejected int `json:"rejected"`
	// FailedEpisodes counts episodes that exhausted their attempt budget.
	FailedEpisodes int `json:"failed_episodes"`
	// LastCoverage is the most recent held-out coverage (-1 before any
	// validation ran).
	LastCoverage float64 `json:"last_validation_coverage"`
	// LastWidth is the most recent held-out mean width (-1 before any
	// validation ran).
	LastWidth float64 `json:"last_validation_width"`
	// LastReason is the most recent rejection reason ("" if none).
	LastReason string `json:"last_reject_reason,omitempty"`
	// LastError is the most recent build/swap error string ("" if none).
	LastError string `json:"last_error,omitempty"`
}

// Supervisor runs the closed drift loop. Record/Kick/Trigger/Status are safe
// for concurrent use with one Run goroutine.
type Supervisor struct {
	cfg Config

	mu       sync.Mutex
	samples  []sample
	total    int // lifetime Record count; total % Window is the ring head
	state    State
	forced   bool
	episodes int
	attempts int
	swaps    int
	rejected int
	failed   int
	lastRep  ValidationReport
	lastErr  string

	kick chan struct{}

	attemptsC *obs.Counter
	successC  *obs.Counter
	failedC   *obs.Counter
	rejectedC map[string]*obs.Counter
	stateG    *obs.Gauge
	valCovG   *obs.Gauge
	valWidthG *obs.Gauge
	swapH     *obs.Histogram
}

// New validates cfg, applies defaults, registers metrics, and returns a
// supervisor ready for Run.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("recal: Config.Base is required")
	}
	if cfg.Swap == nil {
		return nil, fmt.Errorf("recal: Config.Swap is required")
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("recal: alpha %v outside (0, 1)", cfg.Alpha)
	}
	if cfg.Score == nil {
		cfg.Score = conformal.ResidualScore{}
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.MinObserved <= 0 {
		cfg.MinObserved = 256
	}
	if cfg.MinValidation <= 0 {
		cfg.MinValidation = 16
	}
	if cfg.CoverageTol <= 0 {
		cfg.CoverageTol = 0.05
	}
	if cfg.WidthCap <= 0 {
		cfg.WidthCap = 0.9
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	if cfg.MinObserved < MinFitSamples+cfg.MinValidation {
		return nil, fmt.Errorf("recal: MinObserved %d cannot cover %d fit + %d validation samples",
			cfg.MinObserved, MinFitSamples, cfg.MinValidation)
	}
	if cfg.Window < cfg.MinObserved {
		return nil, fmt.Errorf("recal: window %d smaller than MinObserved %d", cfg.Window, cfg.MinObserved)
	}
	s := &Supervisor{
		cfg:     cfg,
		samples: make([]sample, 0, cfg.Window),
		kick:    make(chan struct{}, 1),
		lastRep: ValidationReport{Coverage: math.NaN(), MeanWidth: math.NaN()},
	}
	s.registerMetrics(cfg.Metrics)
	return s, nil
}

// registerMetrics creates the cardpi_recal_* families; reg may be nil.
func (s *Supervisor) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.stateG = reg.Gauge("cardpi_recal_state",
		"Recalibration supervisor state: 0 idle, 1 recalibrating, 2 backoff, 3 failed (episode abandoned).")
	s.attemptsC = reg.Counter("cardpi_recal_attempts_total",
		"Candidate build/validate attempts across all drift episodes.")
	s.successC = reg.Counter("cardpi_recal_success_total",
		"Validated recalibration candidates atomically swapped into the serving chain.")
	s.failedC = reg.Counter("cardpi_recal_failed_episodes_total",
		"Drift episodes abandoned after exhausting the attempt budget; the old chain kept serving.")
	s.rejectedC = map[string]*obs.Counter{}
	for _, reason := range []string{ReasonInsufficient, ReasonCoverage, ReasonWidth, ReasonSwap, ReasonError} {
		s.rejectedC[reason] = reg.Counter("cardpi_recal_rejected_total",
			"Rejected recalibration candidates by reason; every rejection keeps the old chain serving.",
			obs.L("reason", reason))
	}
	s.valCovG = reg.Gauge("cardpi_recal_validation_coverage",
		"Held-out empirical coverage of the most recently validated candidate.")
	s.valWidthG = reg.Gauge("cardpi_recal_validation_width",
		"Held-out mean interval width (normalised selectivity) of the most recently validated candidate.")
	s.swapH = reg.Histogram("cardpi_recal_swap_seconds",
		"Latency of the atomic chain swap (monitor reseed + pointer store) for accepted candidates.",
		obs.LatencyBuckets)
	reg.GaugeFunc("cardpi_recal_window_size",
		"Current rolling-window occupancy in labeled observations.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.samples))
		})
}

// Record adds one labeled observation to the rolling window, computing the
// frozen base model's estimate inline (panics are absorbed, non-finite
// samples dropped). Alloc-free once the window is warm. Call it from the
// serving path for every query whose ground truth is known.
func (s *Supervisor) Record(q workload.Query, trueSel float64) {
	if math.IsNaN(trueSel) || math.IsInf(trueSel, 0) {
		return
	}
	est, ok := s.baseEstimate(q)
	if !ok {
		return
	}
	s.mu.Lock()
	if len(s.samples) < s.cfg.Window {
		s.samples = append(s.samples, sample{q: q, est: est, truth: trueSel})
	} else {
		s.samples[s.total%s.cfg.Window] = sample{q: q, est: est, truth: trueSel}
	}
	s.total++
	s.mu.Unlock()
}

// baseEstimate runs the frozen model defensively: panics and non-finite
// outputs make the sample unusable rather than crashing the serving path.
func (s *Supervisor) baseEstimate(q workload.Query) (est float64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	est = s.cfg.Base.EstimateSelectivity(q)
	return est, isFinite(est)
}

// Kick wakes the Run loop without blocking; redundant kicks coalesce. The
// loop re-checks Config.Drifted before starting an episode, so kicking on
// every drifted observation is cheap and keeps a Failed episode re-armed for
// as long as the drift persists (level-triggered).
func (s *Supervisor) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Trigger forces an episode on the next wake-up regardless of the drift
// gate — the manual /admin/recal/trigger path.
func (s *Supervisor) Trigger() {
	s.mu.Lock()
	s.forced = true
	s.mu.Unlock()
	s.Kick()
}

// Run executes the supervision loop until ctx is cancelled. Start it in its
// own goroutine; only one Run per supervisor.
func (s *Supervisor) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.kick:
		}
		s.mu.Lock()
		forced := s.forced
		s.forced = false
		s.mu.Unlock()
		if !forced && s.cfg.Drifted != nil && !s.cfg.Drifted() {
			continue
		}
		s.runEpisode(ctx)
	}
}

// runEpisode drives one drift episode: bounded attempts with exponential
// backoff, fail-closed on every path including panics.
func (s *Supervisor) runEpisode(ctx context.Context) {
	defer func() {
		if r := recover(); r != nil {
			s.noteError(fmt.Sprintf("episode panic: %v", r))
			s.finishEpisode(false)
		}
	}()
	s.mu.Lock()
	s.episodes++
	ep := s.episodes
	s.mu.Unlock()
	s.logf("recal: episode %d starting (window %d/%d)", ep, s.Status().Observed, s.cfg.Window)
	backoff := s.cfg.Backoff
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			s.finishEpisode(false)
			return
		}
		s.setState(StateRecalibrating)
		s.mu.Lock()
		s.attempts++
		s.mu.Unlock()
		if s.attemptsC != nil {
			s.attemptsC.Inc()
		}
		if s.attemptOnce(ep, attempt) {
			s.finishEpisode(true)
			return
		}
		if attempt < s.cfg.MaxAttempts {
			s.setState(StateBackoff)
			if err := s.cfg.Sleep(ctx, backoff); err != nil {
				s.finishEpisode(false)
				return
			}
			backoff *= 2
			if backoff > s.cfg.MaxBackoff {
				backoff = s.cfg.MaxBackoff
			}
		}
	}
	s.logf("recal: episode %d abandoned after %d attempts; old chain keeps serving", ep, s.cfg.MaxAttempts)
	s.finishEpisode(false)
}

// attemptOnce builds, validates, and (if accepted) swaps one candidate.
// Returns true only after a successful swap.
func (s *Supervisor) attemptOnce(ep, attempt int) bool {
	cand, err := s.BuildCandidate()
	if err != nil {
		s.noteError(err.Error())
		s.reject(ReasonError)
		s.logf("recal: episode %d attempt %d build error: %v", ep, attempt, err)
		return false
	}
	s.noteReport(cand.Report)
	if !cand.Report.Accepted {
		s.reject(cand.Report.Reason)
		s.logf("recal: episode %d attempt %d rejected (%s): coverage %.3f width %.4f on %d held-out",
			ep, attempt, cand.Report.Reason, cand.Report.Coverage, cand.Report.MeanWidth, cand.Report.ValSamples)
		return false
	}
	start := time.Now()
	if err := s.cfg.Swap(cand); err != nil {
		s.noteError(err.Error())
		s.reject(ReasonSwap)
		s.logf("recal: episode %d attempt %d swap refused: %v", ep, attempt, err)
		return false
	}
	if s.swapH != nil {
		s.swapH.Observe(time.Since(start).Seconds())
	}
	s.mu.Lock()
	s.swaps++
	s.mu.Unlock()
	if s.successC != nil {
		s.successC.Inc()
	}
	s.logf("recal: episode %d attempt %d swapped in %s (coverage %.3f width %.4f on %d held-out)",
		ep, attempt, cand.PI.Name(), cand.Report.Coverage, cand.Report.MeanWidth, cand.Report.ValSamples)
	return true
}

// validationStride puts every 4th window sample in the held-out slice; the
// deterministic striping keeps fit and validation interleaved in time so
// both see the same mix of pre- and post-shift traffic.
const validationStride = 4

// BuildCandidate snapshots the rolling window and runs one shadow
// build/validate pass: stripe off a held-out slice, fit the corrector and
// split-conformal calibration on the rest, then score held-out coverage and
// width. It never mutates serving state; the verdict is in the candidate's
// Report. An error return means the build itself failed (ReasonError
// territory); a rejected candidate is a nil-error return with
// Report.Accepted == false.
func (s *Supervisor) BuildCandidate() (*Candidate, error) {
	s.mu.Lock()
	snap := make([]sample, len(s.samples))
	copy(snap, s.samples)
	s.mu.Unlock()

	rep := ValidationReport{Coverage: math.NaN(), MeanWidth: math.NaN()}
	if len(snap) < s.cfg.MinObserved {
		rep.Reason = ReasonInsufficient
		rep.FitSamples = len(snap)
		return &Candidate{Report: rep}, nil
	}
	var fitEsts, fitTruths []float64
	var val []sample
	var fit []sample
	for i, sm := range snap {
		if i%validationStride == validationStride-1 {
			val = append(val, sm)
		} else {
			fit = append(fit, sm)
			fitEsts = append(fitEsts, sm.est)
			fitTruths = append(fitTruths, sm.truth)
		}
	}
	rep.FitSamples = len(fit)
	rep.ValSamples = len(val)
	if len(val) < s.cfg.MinValidation || len(fit) < MinFitSamples {
		rep.Reason = ReasonInsufficient
		return &Candidate{Report: rep}, nil
	}

	corr, err := FitCorrector(fitEsts, fitTruths)
	if err != nil {
		return nil, err
	}
	corrEsts := make([]float64, len(fitEsts))
	for i, e := range fitEsts {
		corrEsts[i] = corr.Apply(e)
	}
	cp, err := conformal.CalibrateSplit(corrEsts, fitTruths, s.cfg.Score, s.cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("recal: calibration failed: %w", err)
	}

	hits, widthSum := 0, 0.0
	finiteOK := true
	for _, sm := range val {
		iv := cp.Interval(corr.Apply(sm.est)).Clip(0, 1)
		if !isFinite(iv.Lo) || !isFinite(iv.Hi) || iv.Lo > iv.Hi {
			finiteOK = false
			break
		}
		if sm.truth >= iv.Lo && sm.truth <= iv.Hi {
			hits++
		}
		widthSum += iv.Hi - iv.Lo
	}
	if !finiteOK {
		rep.Reason = ReasonWidth
		return &Candidate{Report: rep}, nil
	}
	rep.Coverage = float64(hits) / float64(len(val))
	rep.MeanWidth = widthSum / float64(len(val))
	switch {
	case rep.Coverage < 1-s.cfg.Alpha-s.cfg.CoverageTol:
		rep.Reason = ReasonCoverage
	case rep.MeanWidth > s.cfg.WidthCap:
		rep.Reason = ReasonWidth
	default:
		rep.Accepted = true
	}

	model := NewCorrected(s.cfg.Base, corr)
	wl := &workload.Workload{NormN: s.cfg.NormN, Queries: make([]workload.Labeled, 0, len(snap))}
	for _, sm := range snap {
		wl.Queries = append(wl.Queries, workload.Labeled{
			Query: sm.q,
			Card:  int64(sm.truth * float64(s.cfg.NormN)),
			Sel:   sm.truth,
			Norm:  s.cfg.NormN,
		})
	}
	return &Candidate{
		Model:  model,
		PI:     &CandidatePI{model: model, cp: cp},
		Window: wl,
		Report: rep,
	}, nil
}

// Status returns a sanitised snapshot (NaN → -1, JSON-safe).
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		State:          s.state.String(),
		Observed:       len(s.samples),
		Window:         s.cfg.Window,
		Episodes:       s.episodes,
		Attempts:       s.attempts,
		Swaps:          s.swaps,
		Rejected:       s.rejected,
		FailedEpisodes: s.failed,
		LastCoverage:   sanitize(s.lastRep.Coverage),
		LastWidth:      sanitize(s.lastRep.MeanWidth),
		LastReason:     s.lastRep.Reason,
		LastError:      s.lastErr,
	}
}

// setState records the state and mirrors it to the gauge.
func (s *Supervisor) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
	if s.stateG != nil {
		s.stateG.Set(float64(st))
	}
}

// finishEpisode closes an episode: Idle on success, Failed (plus the failed
// counter) otherwise.
func (s *Supervisor) finishEpisode(success bool) {
	if success {
		s.setState(StateIdle)
		return
	}
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
	if s.failedC != nil {
		s.failedC.Inc()
	}
	s.setState(StateFailed)
}

// reject counts a rejected attempt under its reason label.
func (s *Supervisor) reject(reason string) {
	s.mu.Lock()
	s.rejected++
	s.lastRep.Reason = reason
	s.mu.Unlock()
	if c := s.rejectedC[reason]; c != nil {
		c.Inc()
	}
}

// noteReport stores the latest validation verdict and mirrors the gauges.
func (s *Supervisor) noteReport(rep ValidationReport) {
	s.mu.Lock()
	s.lastRep = rep
	s.mu.Unlock()
	if s.valCovG != nil && isFinite(rep.Coverage) {
		s.valCovG.Set(rep.Coverage)
	}
	if s.valWidthG != nil && isFinite(rep.MeanWidth) {
		s.valWidthG.Set(rep.MeanWidth)
	}
}

// noteError stores the latest error string for Status.
func (s *Supervisor) noteError(msg string) {
	s.mu.Lock()
	s.lastErr = msg
	s.mu.Unlock()
}

// logf forwards to Config.Logf when set.
func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sanitize maps non-finite telemetry to -1 so status JSON always encodes.
func sanitize(v float64) float64 {
	if !isFinite(v) {
		return -1
	}
	return v
}

// sleepCtx is the default context-aware backoff sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
