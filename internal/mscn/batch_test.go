package mscn

import (
	"math"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

// TestPredictLogBatchMatchesSequential proves the batched inference path is
// bit-identical to PredictLog for single-table queries.
func TestPredictLogBatchMatchesSequential(t *testing.T) {
	f, trainWL, testWL := singleSetup(t)
	m, err := Train(f, trainWL, Config{Epochs: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]workload.Query, len(testWL.Queries))
	for i, lq := range testWL.Queries {
		qs[i] = lq.Query
	}
	got := make([]float64, len(qs))
	m.PredictLogBatch(qs, got)
	for i, q := range qs {
		want := m.PredictLog(q)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("query %d: batch %v != sequential %v", i, got[i], want)
		}
	}
	sel := make([]float64, len(qs))
	m.EstimateSelectivityBatch(qs, sel)
	for i, q := range qs {
		want := m.EstimateSelectivity(q)
		if math.Float64bits(sel[i]) != math.Float64bits(want) {
			t.Fatalf("query %d: batch selectivity %v != sequential %v", i, sel[i], want)
		}
	}
}

// TestPredictLogBatchJoins covers the join featurizer with sample bitmaps:
// the flat AppendSetElements path must reproduce SetElements' deterministic
// predicate ordering exactly.
func TestPredictLogBatchJoins(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 800, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.GenerateJoins(sch, workload.JoinConfig{Count: 120, Templates: 6, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSchemaFeaturizer(sch).WithSampleBitmaps(16, 24)
	m, err := Train(f, wl, Config{Epochs: 2, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]workload.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		qs[i] = lq.Query
	}
	got := make([]float64, len(qs))
	m.PredictLogBatch(qs, got)
	for i, q := range qs {
		want := m.PredictLog(q)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("join query %d: batch %v != sequential %v", i, got[i], want)
		}
	}
}

// TestAppendSetElementsMatchesSetElements compares the flat rows against
// the reference per-element vectors directly.
func TestAppendSetElementsMatchesSetElements(t *testing.T) {
	f, _, testWL := singleSetup(t)
	var tb, pb []float64
	for _, lq := range testWL.Queries[:50] {
		tb, pb = tb[:0], pb[:0]
		var nT, nP int
		tb, pb, nT, nP = f.AppendSetElements(lq.Query, tb, pb)
		tf, pf := f.SetElements(lq.Query)
		if nT != len(tf) || nP != len(pf) {
			t.Fatalf("counts %d/%d != reference %d/%d", nT, nP, len(tf), len(pf))
		}
		td, pd := f.TableDim(), f.PredDim()
		for e, want := range tf {
			for j, v := range want {
				if tb[e*td+j] != v {
					t.Fatalf("table row %d col %d: %v != %v", e, j, tb[e*td+j], v)
				}
			}
		}
		for e, want := range pf {
			for j, v := range want {
				if pb[e*pd+j] != v {
					t.Fatalf("pred row %d col %d: %v != %v", e, j, pb[e*pd+j], v)
				}
			}
		}
	}
}
