package mscn

import (
	"encoding/binary"
	"fmt"
	"io"

	"cardpi/internal/nn"
)

// Model checkpointing: trained MSCN weights can be written to a stream and
// reloaded against a featurizer built over the same table/schema. Layout:
//
//	magic "MSCN" | hidden:u32 | nameLen:u32 name | predNet | tableNet | outNet

var modelMagic = [4]byte{'M', 'S', 'C', 'N'}

// WriteTo serialises the trained model (weights and identity; the
// featurizer is reconstructed by the caller at load time).
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var written int64
	if _, err := w.Write(modelMagic[:]); err != nil {
		return written, err
	}
	written += 4
	var buf [4]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := w.Write(buf[:])
		written += int64(k)
		return err
	}
	if err := writeU32(uint32(m.hidden)); err != nil {
		return written, err
	}
	if err := writeU32(uint32(len(m.name))); err != nil {
		return written, err
	}
	k, err := io.WriteString(w, m.name)
	written += int64(k)
	if err != nil {
		return written, err
	}
	for _, net := range []*nn.Net{m.predNet, m.tableNet, m.outNet} {
		n, err := net.WriteTo(w)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadModel deserialises a model written by WriteTo, binding it to a
// featurizer that must describe the same table/schema the model was trained
// on (validated against the stored layer dimensions).
func ReadModel(r io.Reader, f *Featurizer) (*Model, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("mscn: reading magic: %w", err)
	}
	if m != modelMagic {
		return nil, fmt.Errorf("mscn: bad magic %q", m)
	}
	var buf [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	hidden, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("mscn: reading hidden size: %w", err)
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("mscn: reading name length: %w", err)
	}
	if nameLen > 256 {
		return nil, fmt.Errorf("mscn: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBytes); err != nil {
		return nil, fmt.Errorf("mscn: reading name: %w", err)
	}
	model := &Model{name: string(nameBytes), feat: f, hidden: int(hidden)}
	nets := []**nn.Net{&model.predNet, &model.tableNet, &model.outNet}
	for i, dst := range nets {
		net, err := nn.ReadNet(r)
		if err != nil {
			return nil, fmt.Errorf("mscn: reading net %d: %w", i, err)
		}
		*dst = net
	}
	if got := model.predNet.Layers[0].In; got != f.PredDim() {
		return nil, fmt.Errorf("mscn: model expects predicate dim %d, featurizer has %d", got, f.PredDim())
	}
	if got := model.tableNet.Layers[0].In; got != f.TableDim() {
		return nil, fmt.Errorf("mscn: model expects table dim %d, featurizer has %d", got, f.TableDim())
	}
	return model, nil
}
