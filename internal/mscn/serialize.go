package mscn

import (
	"fmt"
	"io"

	"cardpi/internal/codec"
	"cardpi/internal/nn"
)

// Model checkpointing: trained MSCN weights can be written to a stream and
// reloaded against a featurizer built over the same table/schema. Layout:
//
//	magic "MSCN" | hidden:u32 | name:string | predNet | tableNet | outNet

var modelMagic = [4]byte{'M', 'S', 'C', 'N'}

// maxNameLen bounds the stored model name.
const maxNameLen = 256

// WriteTo serialises the trained model (weights and identity; the
// featurizer is reconstructed by the caller at load time).
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := codec.NewWriter(w)
	cw.Raw(modelMagic[:])
	cw.U32(uint32(m.hidden))
	cw.String(m.name)
	if err := cw.Err(); err != nil {
		return cw.Len(), err
	}
	written := cw.Len()
	for _, net := range []*nn.Net{m.predNet, m.tableNet, m.outNet} {
		n, err := net.WriteTo(w)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadModel deserialises a model written by WriteTo, binding it to a
// featurizer that must describe the same table/schema the model was trained
// on (validated against the stored layer dimensions).
func ReadModel(r io.Reader, f *Featurizer) (*Model, error) {
	cr := codec.NewReader(r)
	var m [4]byte
	cr.Raw(m[:])
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("mscn: reading magic: %w", err)
	}
	if m != modelMagic {
		return nil, fmt.Errorf("mscn: bad magic %q", m)
	}
	hidden := cr.U32()
	name := cr.String(maxNameLen)
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("mscn: reading header: %w", err)
	}
	model := &Model{name: name, feat: f, hidden: int(hidden)}
	nets := []**nn.Net{&model.predNet, &model.tableNet, &model.outNet}
	for i, dst := range nets {
		net, err := nn.ReadNet(r)
		if err != nil {
			return nil, fmt.Errorf("mscn: reading net %d: %w", i, err)
		}
		*dst = net
	}
	if got := model.predNet.Layers[0].In; got != f.PredDim() {
		return nil, fmt.Errorf("mscn: model expects predicate dim %d, featurizer has %d", got, f.PredDim())
	}
	if got := model.tableNet.Layers[0].In; got != f.TableDim() {
		return nil, fmt.Errorf("mscn: model expects table dim %d, featurizer has %d", got, f.TableDim())
	}
	return model, nil
}
