package mscn

import (
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/workload"
)

func singleSetup(t *testing.T) (*Featurizer, *workload.Workload, *workload.Workload) {
	t.Helper()
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(3, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return NewSingleFeaturizer(tab), parts[0], parts[1]
}

func TestFeaturizerDims(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSingleFeaturizer(tab)
	if f.TableDim() != 1 {
		t.Fatalf("TableDim = %d", f.TableDim())
	}
	if f.PredDim() != 1+tab.NumCols()+4 {
		t.Fatalf("PredDim = %d", f.PredDim())
	}
	q := workload.Query{Preds: []dataset.Predicate{
		{Col: "age", Op: dataset.OpRange, Lo: 10, Hi: 60},
		{Col: "sex", Op: dataset.OpEq, Lo: 1},
	}}
	tf, pf := f.SetElements(q)
	if len(tf) != 1 || len(pf) != 2 {
		t.Fatalf("set sizes %d/%d", len(tf), len(pf))
	}
	for _, v := range pf {
		if len(v) != f.PredDim() {
			t.Fatalf("pred feature length %d", len(v))
		}
	}
}

func TestTrainImprovesOverConstant(t *testing.T) {
	f, trainWL, testWL := singleSetup(t)
	m, err := Train(f, trainWL, Config{Epochs: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var modelQ, constQ float64
	for _, lq := range testWL.Queries {
		modelQ += estimator.QError(m.EstimateSelectivity(lq.Query), lq.Sel)
		constQ += estimator.QError(0.05, lq.Sel)
	}
	if modelQ >= constQ {
		t.Fatalf("MSCN mean q-error %v not better than constant %v",
			modelQ/float64(len(testWL.Queries)), constQ/float64(len(testWL.Queries)))
	}
	if m.Name() != "mscn" {
		t.Fatal("Name wrong")
	}
}

func TestEstimatesInRange(t *testing.T) {
	f, trainWL, testWL := singleSetup(t)
	m, err := Train(f, trainWL, Config{Epochs: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range testWL.Queries {
		s := m.EstimateSelectivity(lq.Query)
		if s < 0 || s > 1 {
			t.Fatalf("selectivity %v out of range", s)
		}
	}
}

func TestJoinWorkloadTraining(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 2500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.GenerateJoins(sch, workload.JoinConfig{Count: 300, Templates: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(9, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	f := NewSchemaFeaturizer(sch)
	m, err := Train(f, parts[0], Config{Epochs: 25, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var modelQ, constQ float64
	for _, lq := range parts[1].Queries {
		modelQ += estimator.QError(m.EstimateSelectivity(lq.Query), lq.Sel)
		constQ += estimator.QError(0.01, lq.Sel)
	}
	if modelQ >= constQ {
		t.Fatalf("join MSCN q-error %v not better than constant %v", modelQ, constQ)
	}
}

func TestSchemaFeaturizerJoinElements(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSchemaFeaturizer(sch)
	if f.TableDim() != 5 {
		t.Fatalf("TableDim = %d, want 5", f.TableDim())
	}
	q := workload.Query{Join: &dataset.JoinQuery{
		Tables: []string{"item", "store"},
		Preds: map[string][]dataset.Predicate{
			"item":        {{Col: "i_category", Op: dataset.OpEq, Lo: 2}},
			"store_sales": {{Col: "ss_quantity", Op: dataset.OpRange, Lo: 5, Hi: 20}},
		},
	}}
	tf, pf := f.SetElements(q)
	if len(tf) != 3 { // center + 2 joined tables
		t.Fatalf("table set size %d, want 3", len(tf))
	}
	if len(pf) != 2 {
		t.Fatalf("pred set size %d, want 2", len(pf))
	}
}

func TestSetElementsDeterministicForJoins(t *testing.T) {
	sch, err := dataset.GenerateDSB(dataset.GenConfig{Rows: 300, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSchemaFeaturizer(sch)
	q := workload.Query{Join: &dataset.JoinQuery{
		Tables: []string{"item", "customer"},
		Preds: map[string][]dataset.Predicate{
			"item":     {{Col: "i_price", Op: dataset.OpRange, Lo: 0, Hi: 100}},
			"customer": {{Col: "c_gender", Op: dataset.OpEq, Lo: 1}},
		},
	}}
	_, a := f.SetElements(q)
	for i := 0; i < 10; i++ {
		_, b := f.SetElements(q)
		for j := range a {
			for k := range a[j] {
				if a[j][k] != b[j][k] {
					t.Fatal("SetElements order is nondeterministic across calls")
				}
			}
		}
	}
}

func TestQuantileVariantsBracket(t *testing.T) {
	f, trainWL, testWL := singleSetup(t)
	lo, err := TrainQuantile(f, trainWL, 0.05, Config{Epochs: 30, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := TrainQuantile(f, trainWL, 0.95, Config{Epochs: 30, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, lq := range testWL.Queries {
		if hi.PredictLog(lq.Query) >= lo.PredictLog(lq.Query) {
			above++
		}
	}
	if frac := float64(above) / float64(len(testWL.Queries)); frac < 0.8 {
		t.Fatalf("upper quantile above lower for only %v of queries", frac)
	}
}

func TestValidation(t *testing.T) {
	f, trainWL, _ := singleSetup(t)
	if _, err := Train(f, nil, Config{}); err == nil {
		t.Fatal("nil workload should fail")
	}
	if _, err := TrainQuantile(f, trainWL, 0, Config{}); err == nil {
		t.Fatal("tau=0 should fail")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	f, trainWL, testWL := singleSetup(t)
	a, err := Train(f, trainWL, Config{Epochs: 3, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(f, trainWL, Config{Epochs: 3, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	q := testWL.Queries[0].Query
	if a.EstimateSelectivity(q) != b.EstimateSelectivity(q) {
		t.Fatal("MSCN training not deterministic")
	}
}

func TestSampleBitmapsImproveAccuracy(t *testing.T) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 4000, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{
		Count: 600, Seed: 41, MinPreds: 2, MaxPreds: 5, MaxSelectivity: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(42, 0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := parts[0], parts[1]
	cfg := Config{Epochs: 15, Seed: 43}

	plain, err := Train(NewSingleFeaturizer(tab), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withBits, err := Train(NewSingleFeaturizer(tab).WithSampleBitmaps(64, 44), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score := func(m *Model) float64 {
		var s float64
		for _, lq := range test.Queries {
			s += estimator.QError(m.EstimateSelectivity(lq.Query), lq.Sel+1e-6)
		}
		return s
	}
	if score(withBits) >= score(plain) {
		t.Fatalf("sample bitmaps did not improve accuracy: %v vs %v",
			score(withBits)/float64(len(test.Queries)), score(plain)/float64(len(test.Queries)))
	}
}

func TestSampleBitmapContents(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 200, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSingleFeaturizer(tab).WithSampleBitmaps(32, 46)
	if f.TableDim() != 1+32 {
		t.Fatalf("TableDim = %d", f.TableDim())
	}
	// No predicates: every sampled row matches.
	tf, _ := f.SetElements(workload.Query{})
	ones := 0
	for _, v := range tf[0][1:] {
		if v == 1 {
			ones++
		}
	}
	if ones != 32 {
		t.Fatalf("empty query bitmap has %d ones, want 32", ones)
	}
	// An impossible predicate matches nothing.
	tf, _ = f.SetElements(workload.Query{Preds: []dataset.Predicate{
		{Col: "age", Op: dataset.OpRange, Lo: -10, Hi: -5},
	}})
	for _, v := range tf[0][1:] {
		if v != 0 {
			t.Fatal("impossible predicate set a bitmap bit")
		}
	}
	// Bitmap size clamps to the table size.
	small, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 10, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewSingleFeaturizer(small).WithSampleBitmaps(64, 48)
	tf, _ = fs.SetElements(workload.Query{})
	ones = 0
	for _, v := range tf[0][1:] {
		if v == 1 {
			ones++
		}
	}
	if ones != 10 {
		t.Fatalf("clamped bitmap has %d ones, want 10", ones)
	}
}
