package mscn

import (
	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/nn"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// Batched inference path. SetElements + forward allocate ~30 small buffers
// per query (per-element feature vectors, per-element forward caches, the
// pooled and concat vectors); at serving batch sizes that allocation and GC
// traffic dominates the actual arithmetic on a single-core box. The batch
// path featurises every query into two flat row-major blocks, runs each
// set network once over its whole block with nn.ForwardBatch, and pools
// per query in the same element order as forward() — bit-identical outputs
// with zero steady-state allocations per query.

// AppendSetElements appends the query's table-set and predicate-set feature
// rows to the flat row-major buffers (rows are TableDim() and PredDim()
// wide) and returns the extended buffers plus the per-set element counts.
// Row values are identical to SetElements, including the deterministic
// feature-signature ordering of join predicates; buffers may be nil and
// grow like append, so steady-state reuse performs no allocations.
func (f *Featurizer) AppendSetElements(q workload.Query, tableBuf, predBuf []float64) ([]float64, []float64, int, int) {
	td, pd := f.TableDim(), f.PredDim()
	nT, nP := 0, 0
	appendTable := func(name string, preds []dataset.Predicate) {
		base := len(tableBuf)
		tableBuf = appendZeros(tableBuf, td)
		v := tableBuf[base : base+td]
		if i, ok := f.tableIdx[name]; ok {
			v[i] = 1
		}
		if f.sampleBits > 0 {
			f.fillBitmap(v[len(f.tables):], name, preds)
		}
		nT++
	}
	appendPreds := func(table string, preds []dataset.Predicate) {
		for _, p := range preds {
			gi, ok := f.colIdx[table+"."+p.Col]
			if !ok {
				continue
			}
			base := len(predBuf)
			predBuf = appendZeros(predBuf, pd)
			v := predBuf[base : base+pd]
			if ti, ok := f.tableIdx[table]; ok {
				v[ti] = 1
			}
			v[len(f.tables)+gi] = 1
			opBase := len(f.tables) + len(f.cols)
			lo, hi := p.Lo, p.Hi
			if p.Op == dataset.OpEq {
				v[opBase] = 1
				hi = p.Lo
			} else {
				v[opBase+1] = 1
			}
			c := f.cols[gi]
			v[opBase+2] = normalise(lo, c)
			v[opBase+3] = normalise(hi, c)
			nP++
		}
	}

	if q.IsJoin() && f.schema != nil {
		appendTable(f.schema.Center.Name, q.Join.Preds[f.schema.Center.Name])
		for _, name := range q.Join.Tables {
			appendTable(name, q.Join.Preds[name])
		}
		predStart := len(predBuf)
		for table, preds := range q.Join.Preds {
			appendPreds(table, preds)
		}
		// Same deterministic ordering as SetElements: predicate rows sorted
		// by feature signature. A selection sort over the row block keeps
		// this allocation-free; equal signatures are identical rows, so any
		// lessVec-consistent order yields the same block.
		sortRows(predBuf[predStart:], pd, nP)
		return tableBuf, predBuf, nT, nP
	}
	if f.single != nil {
		appendTable(f.single.Name, q.Preds)
		appendPreds(f.single.Name, q.Preds)
	}
	return tableBuf, predBuf, nT, nP
}

// appendZeros extends buf by n zeroed entries, reusing spare capacity.
func appendZeros(buf []float64, n int) []float64 {
	l := len(buf)
	if cap(buf) >= l+n {
		buf = buf[:l+n]
		clear(buf[l:])
		return buf
	}
	return append(buf, make([]float64, n)...)
}

// sortRows selection-sorts n rows of width w in place under lessVec.
func sortRows(buf []float64, w, n int) {
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if lessVec(buf[j*w:(j+1)*w], buf[min*w:(min+1)*w]) {
				min = j
			}
		}
		if min != i {
			a, b := buf[i*w:(i+1)*w], buf[min*w:(min+1)*w]
			for k := range a {
				a[k], b[k] = b[k], a[k]
			}
		}
	}
}

// batchScratch is one reusable buffer set of the batched inference path.
type batchScratch struct {
	tableBuf, predBuf []float64
	tCount, pCount    []int
	pooled            []float64
	tBS, pBS, oBS     *nn.BatchScratch
}

// mscnMinBlock is the smallest per-worker row block when PredictLogBatch
// shards a batch: below ~16 queries the featurisation plus three forward
// passes per block no longer amortise the fan-out.
const mscnMinBlock = 16

// PredictLogBatch writes the raw log-selectivity output for each query into
// out (len(out) must equal len(qs)). The batch is sharded in contiguous
// query blocks over the batch worker pool (par.RunBlocks); each block worker
// owns its rows of out and runs the full featurise→forward→pool kernel with
// its own pooled scratch buffer set, so per-query results are bit-identical
// to PredictLog for any worker count — the per-element accumulation and
// pooling order of forward() is preserved inside each row. Safe for
// concurrent use and performs zero per-query heap allocations once the
// scratch pool is warm.
func (m *Model) PredictLogBatch(qs []workload.Query, out []float64) {
	par.RunBlocks(len(qs), mscnMinBlock, func(lo, hi int) error {
		m.predictLogBlock(qs[lo:hi], out[lo:hi])
		return nil
	})
}

// predictLogBlock runs the batched kernel over one contiguous query block,
// writing exactly len(qs) results into out.
func (m *Model) predictLogBlock(qs []workload.Query, out []float64) {
	n := len(qs)
	if n == 0 {
		return
	}
	s, _ := m.pool.Get().(*batchScratch)
	if s == nil {
		s = &batchScratch{
			tBS: m.tableNet.NewBatchScratch(),
			pBS: m.predNet.NewBatchScratch(),
			oBS: m.outNet.NewBatchScratch(),
		}
	}
	defer m.pool.Put(s)

	td, pd := m.feat.TableDim(), m.feat.PredDim()
	s.tableBuf = s.tableBuf[:0]
	s.predBuf = s.predBuf[:0]
	s.tCount = resizeInts(s.tCount, n)
	s.pCount = resizeInts(s.pCount, n)
	for i, q := range qs {
		s.tableBuf, s.predBuf, s.tCount[i], s.pCount[i] = m.feat.AppendSetElements(q, s.tableBuf, s.predBuf)
	}

	var tOut, pOut []float64
	if totalT := len(s.tableBuf) / td; totalT > 0 {
		tOut = m.tableNet.ForwardBatch(s.tableBuf, totalT, td, s.tBS)
	}
	if totalP := len(s.predBuf) / pd; totalP > 0 {
		pOut = m.predNet.ForwardBatch(s.predBuf, totalP, pd, s.pBS)
	}

	h := m.hidden
	if cap(s.pooled) < n*2*h {
		s.pooled = make([]float64, n*2*h)
	}
	s.pooled = s.pooled[:n*2*h]
	clear(s.pooled)
	tOff, pOff := 0, 0
	for i := 0; i < n; i++ {
		dst := s.pooled[i*2*h : (i+1)*2*h]
		poolSet(dst[:h], tOut, tOff, s.tCount[i], h)
		poolSet(dst[h:], pOut, pOff, s.pCount[i], h)
		tOff += s.tCount[i]
		pOff += s.pCount[i]
	}

	// The output net writes straight into the caller's rows — this block owns
	// out exclusively, so no copy-out is needed.
	m.outNet.ForwardBatchInto(s.pooled, n, 2*h, out, s.oBS)
}

// poolSet average-pools count consecutive h-wide rows of block (starting at
// row off) into dst, in row order — the same accumulation and division
// order as forward()'s per-element loop. count == 0 leaves dst zero.
func poolSet(dst, block []float64, off, count, h int) {
	for e := 0; e < count; e++ {
		row := block[(off+e)*h : (off+e+1)*h]
		for j, v := range row {
			dst[j] += v
		}
	}
	if count > 0 {
		for j := range dst {
			dst[j] /= float64(count)
		}
	}
}

func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// EstimateSelectivityBatch implements estimator.BatchEstimator: out[i] is
// bit-identical to EstimateSelectivity(qs[i]).
func (m *Model) EstimateSelectivityBatch(qs []workload.Query, out []float64) {
	m.PredictLogBatch(qs, out)
	for i, v := range out {
		out[i] = estimator.SelFromLog(v)
	}
}
