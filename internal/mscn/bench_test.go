package mscn

import (
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func BenchmarkEstimate(b *testing.B) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 200, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	m, err := Train(NewSingleFeaturizer(tab), wl, Config{Epochs: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q := wl.Queries[0].Query
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateSelectivity(q)
	}
}
