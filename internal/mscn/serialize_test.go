package mscn

import (
	"bytes"
	"testing"

	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func TestModelRoundTrip(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSingleFeaturizer(tab)
	m, err := Train(f, wl, Config{Epochs: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != m.Name() {
		t.Fatal("name changed")
	}
	for _, lq := range wl.Queries[:10] {
		if m.EstimateSelectivity(lq.Query) != loaded.EstimateSelectivity(lq.Query) {
			t.Fatal("round-trip changed predictions")
		}
	}
}

func TestReadModelRejectsMismatchedFeaturizer(t *testing.T) {
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(NewSingleFeaturizer(tab), wl, Config{Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := dataset.GeneratePower(dataset.GenConfig{Rows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf, NewSingleFeaturizer(other)); err == nil {
		t.Fatal("mismatched featurizer accepted")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	tab, _ := dataset.GenerateCensus(dataset.GenConfig{Rows: 100, Seed: 8})
	f := NewSingleFeaturizer(tab)
	if _, err := ReadModel(bytes.NewReader([]byte("XXXX")), f); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadModel(bytes.NewReader(nil), f); err == nil {
		t.Fatal("empty stream accepted")
	}
}
