// Package mscn implements the multi-set convolutional network of Kipf et al.
// ("Learned cardinalities: estimating correlated joins with deep learning"),
// the paper's exemplar of supervised query-driven estimation. A query is
// represented as two sets — participating tables and predicates — each
// element of which passes through a shared per-set MLP; the element outputs
// are average-pooled, concatenated, and fed to an output MLP that regresses
// log-selectivity. Training minimises the mean q-error loss, as in the
// paper; a pinball-loss variant provides the CQR quantile regressors.
package mscn

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/nn"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// Featurizer converts queries into MSCN's set representation. It is built
// either over a single table or over a star schema (for join workloads).
// When a sample size is configured, each table-set element carries a
// materialized sample bitmap — one bit per sampled base-table row indicating
// whether it satisfies the query's predicates on that table — the signal
// that lets the original MSCN see through correlated predicates.
type Featurizer struct {
	tables   []string
	tableIdx map[string]int
	// colIdx maps table/column to a global column index.
	colIdx map[string]int
	// colRef resolves a global column index back to its Column for
	// normalisation.
	cols []*dataset.Column

	single *dataset.Table
	schema *dataset.Schema

	// sampleRows[table] lists the sampled row indexes (empty = no bitmaps).
	sampleRows map[string][]int
	sampleBits int
}

// NewSingleFeaturizer builds the featurizer for single-table workloads.
func NewSingleFeaturizer(t *dataset.Table) *Featurizer {
	f := &Featurizer{
		tables:   []string{t.Name},
		tableIdx: map[string]int{t.Name: 0},
		colIdx:   make(map[string]int),
		single:   t,
	}
	for _, c := range t.Cols {
		f.colIdx[t.Name+"."+c.Name] = len(f.cols)
		f.cols = append(f.cols, c)
	}
	return f
}

// NewSchemaFeaturizer builds the featurizer for join workloads over a star
// schema.
func NewSchemaFeaturizer(s *dataset.Schema) *Featurizer {
	f := &Featurizer{
		tableIdx: make(map[string]int),
		colIdx:   make(map[string]int),
		schema:   s,
	}
	names := s.Tables()
	sort.Strings(names[1:]) // center first, rest already sorted by Tables()
	for _, name := range names {
		f.tableIdx[name] = len(f.tables)
		f.tables = append(f.tables, name)
		for _, c := range s.Table(name).Cols {
			f.colIdx[name+"."+c.Name] = len(f.cols)
			f.cols = append(f.cols, c)
		}
	}
	return f
}

// WithSampleBitmaps enables materialized sample bitmaps of the given size:
// bits rows are sampled deterministically from every table, and each
// table-set element gains bits entries marking which sampled rows satisfy
// the query's predicates on that table. Call before training; the feature
// dimensions change.
func (f *Featurizer) WithSampleBitmaps(bits int, seed int64) *Featurizer {
	if bits <= 0 {
		return f
	}
	f.sampleBits = bits
	f.sampleRows = make(map[string][]int, len(f.tables))
	r := rand.New(rand.NewSource(seed))
	for _, name := range f.tables {
		t := f.tableByName(name)
		n := t.NumRows()
		k := bits
		if k > n {
			k = n
		}
		f.sampleRows[name] = r.Perm(n)[:k]
	}
	return f
}

func (f *Featurizer) tableByName(name string) *dataset.Table {
	if f.single != nil {
		return f.single
	}
	return f.schema.Table(name)
}

// PredDim returns the per-predicate feature length: one-hot table, one-hot
// global column, one-hot operator, and the normalised bounds.
func (f *Featurizer) PredDim() int { return len(f.tables) + len(f.cols) + 2 + 2 }

// TableDim returns the per-table feature length: a table one-hot plus the
// sample bitmap when enabled.
func (f *Featurizer) TableDim() int { return len(f.tables) + f.sampleBits }

// SetElements expands a query into its table-set and predicate-set feature
// vectors.
func (f *Featurizer) SetElements(q workload.Query) (tableFeats, predFeats [][]float64) {
	appendTable := func(name string, preds []dataset.Predicate) {
		v := make([]float64, f.TableDim())
		if i, ok := f.tableIdx[name]; ok {
			v[i] = 1
		}
		if f.sampleBits > 0 {
			f.fillBitmap(v[len(f.tables):], name, preds)
		}
		tableFeats = append(tableFeats, v)
	}
	appendPreds := func(table string, preds []dataset.Predicate) {
		for _, p := range preds {
			gi, ok := f.colIdx[table+"."+p.Col]
			if !ok {
				continue
			}
			v := make([]float64, f.PredDim())
			if ti, ok := f.tableIdx[table]; ok {
				v[ti] = 1
			}
			v[len(f.tables)+gi] = 1
			opBase := len(f.tables) + len(f.cols)
			lo, hi := p.Lo, p.Hi
			if p.Op == dataset.OpEq {
				v[opBase] = 1
				hi = p.Lo
			} else {
				v[opBase+1] = 1
			}
			c := f.cols[gi]
			v[opBase+2] = normalise(lo, c)
			v[opBase+3] = normalise(hi, c)
			predFeats = append(predFeats, v)
		}
	}

	if q.IsJoin() && f.schema != nil {
		appendTable(f.schema.Center.Name, q.Join.Preds[f.schema.Center.Name])
		for _, name := range q.Join.Tables {
			appendTable(name, q.Join.Preds[name])
		}
		for table, preds := range q.Join.Preds {
			appendPreds(table, preds)
		}
		// Predicate iteration order over the map must be deterministic for
		// reproducible training: sort by feature signature.
		sort.Slice(predFeats, func(i, j int) bool { return lessVec(predFeats[i], predFeats[j]) })
		return tableFeats, predFeats
	}
	if f.single != nil {
		appendTable(f.single.Name, q.Preds)
		appendPreds(f.single.Name, q.Preds)
	}
	return tableFeats, predFeats
}

// fillBitmap sets dst[i] = 1 when sampled row i of the table satisfies the
// conjunction of the query's predicates on that table (rows with no
// predicates all match). Predicates on unknown columns match nothing.
func (f *Featurizer) fillBitmap(dst []float64, table string, preds []dataset.Predicate) {
	t := f.tableByName(table)
	rows := f.sampleRows[table]
	if t == nil || rows == nil {
		return
	}
	cols := make([][]int64, len(preds))
	for pi, p := range preds {
		c := t.Column(p.Col)
		if c == nil {
			return
		}
		cols[pi] = c.Values
	}
rows:
	for bi, ri := range rows {
		for pi, p := range preds {
			if !p.Matches(cols[pi][ri]) {
				continue rows
			}
		}
		dst[bi] = 1
	}
}

func lessVec(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func normalise(v int64, c *dataset.Column) float64 {
	min := c.Min
	if c.Type == dataset.Categorical {
		min = 0
	}
	width := c.DomainWidth()
	if width <= 1 {
		return 0
	}
	x := float64(v-min) / float64(width-1)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Config controls training.
type Config struct {
	// Hidden is the width of the per-set MLPs and pooled representation.
	Hidden int
	// Epochs, BatchSize, LR drive minibatch Adam.
	Epochs    int
	BatchSize int
	LR        float64
	// Seed makes initialisation and training deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	return c
}

// Model is a trained MSCN estimator.
type Model struct {
	name     string
	feat     *Featurizer
	predNet  *nn.Net
	tableNet *nn.Net
	outNet   *nn.Net
	hidden   int
	// pool recycles batchScratch buffer sets across PredictLogBatch calls
	// (batch.go); the zero value is ready to use, so the serialize loader
	// needs no extra wiring.
	pool sync.Pool
}

// Train fits MSCN with the mean q-error loss on log-selectivity labels.
func Train(f *Featurizer, wl *workload.Workload, cfg Config) (*Model, error) {
	return train(f, wl, nn.QErrorLoss{}, "mscn", cfg)
}

// TrainQuantile fits the tau-quantile variant: identical architecture, with
// the loss replaced by the pinball loss — exactly the modification the paper
// makes for CQR.
func TrainQuantile(f *Featurizer, wl *workload.Workload, tau float64, cfg Config) (*Model, error) {
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("mscn: tau must be in (0,1), got %v", tau)
	}
	return train(f, wl, nn.PinballLoss{Tau: tau}, fmt.Sprintf("mscn-q%.3f", tau), cfg)
}

func train(f *Featurizer, wl *workload.Workload, loss nn.Loss, name string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if wl == nil || len(wl.Queries) == 0 {
		return nil, fmt.Errorf("mscn: empty training workload")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		name:     name,
		feat:     f,
		predNet:  nn.NewNet(r, f.PredDim(), cfg.Hidden, cfg.Hidden),
		tableNet: nn.NewNet(r, f.TableDim(), cfg.Hidden, cfg.Hidden),
		outNet:   nn.NewNet(r, 2*cfg.Hidden, cfg.Hidden, 1),
		hidden:   cfg.Hidden,
	}

	// Pre-featurise the workload once; SetElements only reads the featurizer
	// and writes fresh per-call buffers, so queries featurise concurrently.
	type sample struct {
		tables, preds [][]float64
		y             float64
	}
	samples := make([]sample, len(wl.Queries))
	par.ForEach(len(wl.Queries), func(i int) error {
		lq := wl.Queries[i]
		tf, pf := f.SetElements(lq.Query)
		samples[i] = sample{tables: tf, preds: pf, y: estimator.LogSel(lq.Sel)}
		return nil
	})

	opt := nn.NewAdam(cfg.LR, m.predNet, m.tableNet, m.outNet)
	trainRng := rand.New(rand.NewSource(cfg.Seed + 1))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		idx := trainRng.Perm(len(samples))
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, si := range idx[start:end] {
				s := samples[si]
				pred, caches := m.forward(s.tables, s.preds)
				m.backward(caches, loss.Grad(pred, s.y))
			}
			opt.Step(end - start)
		}
	}
	return m, nil
}

// forwardCaches keeps everything needed for backward.
type forwardCaches struct {
	tableCaches []*nn.Cache
	predCaches  []*nn.Cache
	outCache    *nn.Cache
	tableFeats  [][]float64
	predFeats   [][]float64
}

func (m *Model) forward(tableFeats, predFeats [][]float64) (float64, *forwardCaches) {
	c := &forwardCaches{tableFeats: tableFeats, predFeats: predFeats}
	pooledT := make([]float64, m.hidden)
	for _, tf := range tableFeats {
		out, cache := m.tableNet.Forward(tf)
		c.tableCaches = append(c.tableCaches, cache)
		for i, v := range out {
			pooledT[i] += v
		}
	}
	if len(tableFeats) > 0 {
		for i := range pooledT {
			pooledT[i] /= float64(len(tableFeats))
		}
	}
	pooledP := make([]float64, m.hidden)
	for _, pf := range predFeats {
		out, cache := m.predNet.Forward(pf)
		c.predCaches = append(c.predCaches, cache)
		for i, v := range out {
			pooledP[i] += v
		}
	}
	if len(predFeats) > 0 {
		for i := range pooledP {
			pooledP[i] /= float64(len(predFeats))
		}
	}
	concat := make([]float64, 0, 2*m.hidden)
	concat = append(concat, pooledT...)
	concat = append(concat, pooledP...)
	out, outCache := m.outNet.Forward(concat)
	c.outCache = outCache
	return out[0], c
}

func (m *Model) backward(c *forwardCaches, gradOut float64) {
	gradConcat := m.outNet.Backward(c.outCache, []float64{gradOut})
	gradT := gradConcat[:m.hidden]
	gradP := gradConcat[m.hidden:]
	if k := len(c.tableCaches); k > 0 {
		scaled := make([]float64, m.hidden)
		for i, g := range gradT {
			scaled[i] = g / float64(k)
		}
		for _, cache := range c.tableCaches {
			m.tableNet.Backward(cache, scaled)
		}
	}
	if k := len(c.predCaches); k > 0 {
		scaled := make([]float64, m.hidden)
		for i, g := range gradP {
			scaled[i] = g / float64(k)
		}
		for _, cache := range c.predCaches {
			m.predNet.Backward(cache, scaled)
		}
	}
}

// Name implements estimator.Estimator.
func (m *Model) Name() string { return m.name }

// EstimateSelectivity implements estimator.Estimator.
func (m *Model) EstimateSelectivity(q workload.Query) float64 {
	tf, pf := m.feat.SetElements(q)
	pred, _ := m.forward(tf, pf)
	return estimator.SelFromLog(pred)
}

// PredictLog returns the raw log-selectivity output, used by the quantile
// variants where clamping to [0,1] before conformalisation would discard
// information.
func (m *Model) PredictLog(q workload.Query) float64 {
	tf, pf := m.feat.SetElements(q)
	pred, _ := m.forward(tf, pf)
	return pred
}
