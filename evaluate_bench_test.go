package cardpi

import (
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/histogram"
	"cardpi/internal/workload"
)

// BenchmarkEvaluate measures interval production over a full test workload —
// the path parallelised across the worker pool with per-query latency
// accounting. Results are recorded in BENCH_nn.json by `make bench-json`.
func BenchmarkEvaluate(b *testing.B) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 1500, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := wl.Split(3, 0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cal, test := parts[0], parts[1]
	model := histogram.NewSingle(tab, histogram.Config{})
	pi, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := Evaluate(pi, test)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(ev.Coverage, "coverage")
		}
	}
}
