package cardpi_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// section. Each benchmark runs the corresponding experiment end to end
// (data + workload generation, model training, conformal calibration,
// interval evaluation) and reports the experiment's headline metrics
// alongside the runtime, so `go test -bench=. -benchmem` reproduces the
// paper's result set. The benchmarks use the small scale preset; run
// cmd/cardpi-bench for the larger default scale.

import (
	"testing"

	"cardpi/internal/experiments"
)

func benchExperiment(b *testing.B, id string, metrics ...string) {
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	scale := experiments.Small()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := runner(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, m := range metrics {
				if v, ok := report.Metrics[m]; ok {
					b.ReportMetric(v, m)
				}
			}
		}
	}
}

// BenchmarkFig1Feasibility regenerates Figure 1: PI feasibility for
// MSCN/Naru/LW-NN under all four UQ algorithms on DMV.
func BenchmarkFig1Feasibility(b *testing.B) {
	benchExperiment(b, "fig1", "mscn/s-cp/coverage", "naru/s-cp/meanWidth", "mscn/s-cp/meanWidth")
}

// BenchmarkFig2Datasets regenerates Figure 2: Census/Forest/Power with MSCN.
func BenchmarkFig2Datasets(b *testing.B) {
	benchExperiment(b, "fig2", "census/s-cp/coverage", "forest/s-cp/coverage", "power/s-cp/coverage")
}

// BenchmarkFig3DSBJoins regenerates Figure 3: DSB join queries (MSCN).
func BenchmarkFig3DSBJoins(b *testing.B) {
	benchExperiment(b, "fig3", "mscn/s-cp/coverage", "mscn/cqr/coverage")
}

// BenchmarkFig4JOBJoins regenerates Figure 4: JOB join queries (MSCN).
func BenchmarkFig4JOBJoins(b *testing.B) {
	benchExperiment(b, "fig4", "mscn/s-cp/coverage", "mscn/cqr/coverage")
}

// BenchmarkFig5HighSelectivity regenerates Figure 5: relative interval
// widths collapse for high-selectivity queries.
func BenchmarkFig5HighSelectivity(b *testing.B) {
	benchExperiment(b, "fig5", "lowSpread", "highSpread", "highMeanRelWidth")
}

// BenchmarkFig6QErrorScore regenerates Figure 6: q-error scoring function.
func BenchmarkFig6QErrorScore(b *testing.B) {
	benchExperiment(b, "fig6", "qerror/s-cp/relWidth", "residual/s-cp/relWidth")
}

// BenchmarkFig7RelativeScore regenerates Figure 7: relative-error scoring.
func BenchmarkFig7RelativeScore(b *testing.B) {
	benchExperiment(b, "fig7", "relative/s-cp/coverage", "residual/s-cp/coverage")
}

// BenchmarkFig8OnlineCP regenerates Figure 8: online calibration tightening.
func BenchmarkFig8OnlineCP(b *testing.B) {
	benchExperiment(b, "fig8", "firstWidth", "lastWidth", "coverage")
}

// BenchmarkFig9CoverageLevels regenerates Figure 9: coverage level sweep.
func BenchmarkFig9CoverageLevels(b *testing.B) {
	benchExperiment(b, "fig9", "width@0.90", "width@0.95", "width@0.99")
}

// BenchmarkFig10Exchangeable regenerates Figure 10: exchangeable
// calibration/test.
func BenchmarkFig10Exchangeable(b *testing.B) {
	benchExperiment(b, "fig10", "coverage", "martingaleMaxLog")
}

// BenchmarkFig11NonExchangeable regenerates Figure 11: coverage loss under
// workload shift.
func BenchmarkFig11NonExchangeable(b *testing.B) {
	benchExperiment(b, "fig11", "coverage", "martingaleMaxLog")
}

// BenchmarkFig12SplitSweep regenerates Figure 12: training/calibration split.
func BenchmarkFig12SplitSweep(b *testing.B) {
	benchExperiment(b, "fig12", "width@0.25", "width@0.50", "width@0.75")
}

// BenchmarkFig13EpochsMSCN regenerates Figure 13: classifier accuracy via
// training epochs, MSCN + S-CP.
func BenchmarkFig13EpochsMSCN(b *testing.B) {
	benchExperiment(b, "fig13", "width@0.50", "width@1.00")
}

// BenchmarkFig14EpochsNaru regenerates Figure 14: same sweep for Naru.
func BenchmarkFig14EpochsNaru(b *testing.B) {
	benchExperiment(b, "fig14", "width@0.50", "width@1.00")
}

// BenchmarkTable1Optimizer regenerates Table I: the Postgres-style optimizer
// with and without PI injection.
func BenchmarkTable1Optimizer(b *testing.B) {
	benchExperiment(b, "tab1",
		"default/qerr-p90", "pi/qerr-p90", "costReductionPct")
}

// BenchmarkGuidance regenerates the Section V-D practitioner guidance
// analysis: per-method width ratios vs S-CP and inference cost.
func BenchmarkGuidance(b *testing.B) {
	benchExperiment(b, "guidance", "jk-cv+/widthVsSCP", "lw-s-cp/widthVsSCP", "cqr/widthVsSCP")
}

// BenchmarkAblationCVPlus compares the two Jackknife+ interval
// constructions (Algorithm 1 vs the CV+ interval of Barber et al.).
func BenchmarkAblationCVPlus(b *testing.B) {
	benchExperiment(b, "abl-cvplus", "algorithm1/meanWidth", "cvplus/meanWidth")
}

// BenchmarkAblationLCP evaluates localized conformal prediction, the
// extension Section V-D of the paper names as promising future work.
func BenchmarkAblationLCP(b *testing.B) {
	benchExperiment(b, "abl-lcp", "lcp/coverage", "lcp/meanWidth", "s-cp/meanWidth")
}

// BenchmarkAblationSamplingCI contrasts the traditional AQP sampling
// confidence interval with a conformal wrapper around the same sampler.
func BenchmarkAblationSamplingCI(b *testing.B) {
	benchExperiment(b, "abl-sampling", "ci/coverage", "conformal/coverage")
}

// BenchmarkAblationMondrian compares global vs per-join-template (Mondrian)
// conformal calibration on the DSB join workload.
func BenchmarkAblationMondrian(b *testing.B) {
	benchExperiment(b, "abl-mondrian", "global-s-cp/meanWidth", "mondrian/meanWidth")
}

// BenchmarkAblationSPN wraps a DeepDB-style sum-product network — a fourth
// model family — with the conformal methods.
func BenchmarkAblationSPN(b *testing.B) {
	benchExperiment(b, "abl-spn", "spn/s-cp/coverage", "spn/s-cp/meanWidth")
}

// BenchmarkModels regenerates the estimator accuracy landscape underpinning
// the paper's premise that tighter intervals follow from better models.
func BenchmarkModels(b *testing.B) {
	benchExperiment(b, "models", "spn/qerr-p90", "mscn/qerr-p90", "histogram/qerr-p90")
}

// BenchmarkCalibration regenerates the coverage calibration curve (empirical
// vs nominal across the coverage grid).
func BenchmarkCalibration(b *testing.B) {
	benchExperiment(b, "calibration", "empirical@0.90", "worstUndercoverage")
}

// BenchmarkAblationCorrelation regenerates the PI-width-vs-correlation sweep.
func BenchmarkAblationCorrelation(b *testing.B) {
	benchExperiment(b, "abl-correlation", "width@0.0", "width@0.9")
}

// BenchmarkAblationWeighted reruns the Fig-11 shift scenario with weighted
// conformal prediction (covariate-shift correction).
func BenchmarkAblationWeighted(b *testing.B) {
	benchExperiment(b, "abl-weighted", "plain-s-cp/coverage", "weighted-cp/coverage")
}

// BenchmarkAblationSPNJoins evaluates the data-driven per-template join SPNs
// (DeepDB's RSPN design) against MSCN with conformal wrappers on DSB.
func BenchmarkAblationSPNJoins(b *testing.B) {
	benchExperiment(b, "abl-spn-joins", "spn-join/s-cp/coverage", "spn-join/s-cp/meanWidth", "mscn/s-cp/meanWidth")
}

// BenchmarkAblationBitmaps measures MSCN's materialized sample bitmaps.
func BenchmarkAblationBitmaps(b *testing.B) {
	benchExperiment(b, "abl-bitmaps", "plain/meanWidth", "bitmaps-64/meanWidth")
}
