package cardpi

import (
	"fmt"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/workload"
)

// Evaluation summarises a PI method over a test workload: empirical
// coverage, interval width statistics (in selectivity units), and the mean
// inference latency per interval.
type Evaluation struct {
	Name       string
	Coverage   float64
	Widths     conformal.WidthStats
	MeanPITime time.Duration
	// Intervals are the per-query intervals, aligned with the workload.
	Intervals []Interval
}

// Evaluate runs a PI method over every query of a test workload.
func Evaluate(pi PI, test *workload.Workload) (*Evaluation, error) {
	if test == nil || len(test.Queries) == 0 {
		return nil, fmt.Errorf("cardpi: empty test workload")
	}
	intervals := make([]Interval, len(test.Queries))
	truths := make([]float64, len(test.Queries))
	start := time.Now()
	for i, lq := range test.Queries {
		iv, err := pi.Interval(lq.Query)
		if err != nil {
			return nil, err
		}
		intervals[i] = iv
		truths[i] = lq.Sel
	}
	elapsed := time.Since(start)
	cov, err := conformal.Coverage(intervals, truths)
	if err != nil {
		return nil, err
	}
	widths, err := conformal.Widths(intervals)
	if err != nil {
		return nil, err
	}
	return &Evaluation{
		Name:       pi.Name(),
		Coverage:   cov,
		Widths:     widths,
		MeanPITime: elapsed / time.Duration(len(test.Queries)),
		Intervals:  intervals,
	}, nil
}

// String renders a one-line summary.
func (e *Evaluation) String() string {
	return fmt.Sprintf("%-18s coverage=%.3f meanWidth=%.5f p90Width=%.5f latency=%s",
		e.Name, e.Coverage, e.Widths.Mean, e.Widths.P90, e.MeanPITime)
}
