package cardpi

import (
	"fmt"
	"sort"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// Evaluation summarises a PI method over a test workload: empirical
// coverage, interval width statistics (in selectivity units), and per-query
// inference latency. Each pi.Interval call is timed individually, so
// MeanPITime and P99PITime describe the per-call latency distribution
// rather than an average smeared over the whole loop.
type Evaluation struct {
	Name       string
	Coverage   float64
	Widths     conformal.WidthStats
	MeanPITime time.Duration
	P99PITime  time.Duration
	// Intervals are the per-query intervals, aligned with the workload.
	Intervals []Interval
}

// Evaluate runs a PI method over every query of a test workload. Queries are
// dispatched across a bounded worker pool — every PI implementation in this
// package is safe for concurrent Interval calls — and Intervals stays in
// workload order regardless of scheduling.
func Evaluate(pi PI, test *workload.Workload) (*Evaluation, error) {
	if test == nil || len(test.Queries) == 0 {
		return nil, fmt.Errorf("cardpi: empty test workload")
	}
	intervals := make([]Interval, len(test.Queries))
	truths := make([]float64, len(test.Queries))
	times := make([]time.Duration, len(test.Queries))
	err := par.ForEach(len(test.Queries), func(i int) error {
		lq := test.Queries[i]
		qStart := time.Now()
		iv, err := pi.Interval(lq.Query)
		times[i] = time.Since(qStart)
		if err != nil {
			return err
		}
		intervals[i] = iv
		truths[i] = lq.Sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	cov, err := conformal.Coverage(intervals, truths)
	if err != nil {
		return nil, err
	}
	widths, err := conformal.Widths(intervals)
	if err != nil {
		return nil, err
	}
	mean, p99 := latencyStats(times)
	return &Evaluation{
		Name:       pi.Name(),
		Coverage:   cov,
		Widths:     widths,
		MeanPITime: mean,
		P99PITime:  p99,
		Intervals:  intervals,
	}, nil
}

// latencyStats reduces per-call durations to their mean and p99 (nearest-
// rank, clamped to the maximum for small samples).
func latencyStats(times []time.Duration) (mean, p99 time.Duration) {
	var total time.Duration
	for _, d := range times {
		total += d
	}
	mean = total / time.Duration(len(times))
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := min((99*len(sorted)+99)/100, len(sorted)) - 1
	p99 = sorted[idx]
	return mean, p99
}

// String renders a one-line summary.
func (e *Evaluation) String() string {
	return fmt.Sprintf("%-18s coverage=%.3f meanWidth=%.5f p90Width=%.5f latency=%s p99=%s",
		e.Name, e.Coverage, e.Widths.Mean, e.Widths.P90, e.MeanPITime, e.P99PITime)
}
