package cardpi

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/obs"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// Evaluation summarises a PI method over a test workload: empirical
// coverage, interval width statistics (in selectivity units), and per-query
// inference latency. Each pi.Interval call is timed individually, so
// MeanPITime and P99PITime describe the per-call latency distribution
// rather than an average smeared over the whole loop.
type Evaluation struct {
	// Name is the evaluated method's PI.Name() (e.g. "s-cp/spn").
	Name string
	// Coverage is the empirical fraction of test queries whose true
	// selectivity fell inside the interval (target: 1-alpha).
	Coverage float64
	// Widths summarises the interval-width distribution in normalised
	// selectivity units.
	Widths conformal.WidthStats
	// MeanPITime and P99PITime are the mean and nearest-rank 99th
	// percentile of per-call Interval wall time; see EXPERIMENTS.md
	// ("Reading the numbers") for how to interpret them.
	MeanPITime time.Duration
	// P99PITime is the per-call p99 latency companion to MeanPITime.
	P99PITime time.Duration
	// Intervals are the per-query intervals, aligned with the workload.
	Intervals []Interval
}

// Evaluate runs a PI method over every query of a test workload. Queries are
// dispatched across a bounded worker pool — every PI implementation in this
// package is safe for concurrent Interval calls — and Intervals stays in
// workload order regardless of scheduling.
//
// Evaluate also publishes its results on the process-wide obs registry
// (obs.Default()), labeled by the method's Name(): a run counter, the latest
// coverage and mean width as gauges, and every per-query latency into the
// cardpi_pi_latency_seconds histogram — unless pi is already Instrumented,
// in which case the wrapper records latencies itself and Evaluate skips the
// histogram to avoid double counting.
func Evaluate(pi PI, test *workload.Workload) (*Evaluation, error) {
	return EvaluateCtx(context.Background(), pi, test)
}

// EvaluateCtx is Evaluate under a context: each per-query Interval call goes
// through the IntervalCtx shim (context-aware PIs see the deadline), workers
// stop dispatching once ctx is cancelled, and the evaluation returns
// ctx.Err(). Units and metrics behaviour match Evaluate.
func EvaluateCtx(ctx context.Context, pi PI, test *workload.Workload) (*Evaluation, error) {
	if test == nil || len(test.Queries) == 0 {
		return nil, fmt.Errorf("cardpi: empty test workload")
	}
	method := obs.L("method", pi.Name())
	reg := obs.Default()
	var lat *obs.Histogram
	if _, instrumented := pi.(*Instrumented); !instrumented {
		lat = reg.Histogram("cardpi_pi_latency_seconds",
			"Per-call PI.Interval latency in seconds, by method.", obs.LatencyBuckets, method)
	}
	intervals := make([]Interval, len(test.Queries))
	truths := make([]float64, len(test.Queries))
	times := make([]time.Duration, len(test.Queries))
	var err error
	if bp, ok := pi.(BatchPI); ok {
		err = evaluateBatched(ctx, bp, test, intervals, truths, times, lat)
	} else {
		err = par.ForEach(len(test.Queries), func(i int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			lq := test.Queries[i]
			qStart := time.Now()
			iv, err := IntervalCtx(ctx, pi, lq.Query)
			times[i] = time.Since(qStart)
			if lat != nil {
				lat.Observe(times[i].Seconds())
			}
			if err != nil {
				return err
			}
			intervals[i] = iv
			truths[i] = lq.Sel
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	cov, err := conformal.Coverage(intervals, truths)
	if err != nil {
		return nil, err
	}
	widths, err := conformal.Widths(intervals)
	if err != nil {
		return nil, err
	}
	reg.Counter("cardpi_evaluate_runs_total",
		"Completed Evaluate runs, by method.", method).Inc()
	reg.Gauge("cardpi_evaluate_coverage",
		"Empirical coverage of the most recent Evaluate run, by method.", method).Set(cov)
	reg.Gauge("cardpi_evaluate_width_mean",
		"Mean interval width (normalised selectivity) of the most recent Evaluate run, by method.", method).Set(widths.Mean)
	mean, p99 := latencyStats(times)
	return &Evaluation{
		Name:       pi.Name(),
		Coverage:   cov,
		Widths:     widths,
		MeanPITime: mean,
		P99PITime:  p99,
		Intervals:  intervals,
	}, nil
}

// evaluateChunk bounds how many queries EvaluateCtx hands to one
// IntervalBatch call: large enough to amortise the batch path's fixed costs,
// small enough that cancellation is honoured promptly between chunks.
const evaluateChunk = 256

// evaluateBatched drives a BatchPI through the test workload in chunks.
// Per-query wall time is the chunk duration divided by the chunk size —
// IntervalBatch answers all of a chunk's queries at once, so amortised
// latency is the honest per-query figure (and the one serving pays).
func evaluateBatched(ctx context.Context, pi BatchPI, test *workload.Workload,
	intervals []Interval, truths []float64, times []time.Duration, lat *obs.Histogram) error {
	for start := 0; start < len(test.Queries); start += evaluateChunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := min(start+evaluateChunk, len(test.Queries))
		chunk := make([]workload.Query, end-start)
		for i := range chunk {
			chunk[i] = test.Queries[start+i].Query
		}
		chunkStart := time.Now()
		ivs, err := pi.IntervalBatch(chunk)
		perQuery := time.Since(chunkStart) / time.Duration(len(chunk))
		if err != nil {
			return err
		}
		for i, iv := range ivs {
			intervals[start+i] = iv
			truths[start+i] = test.Queries[start+i].Sel
			times[start+i] = perQuery
			if lat != nil {
				lat.Observe(perQuery.Seconds())
			}
		}
	}
	return nil
}

// latencyStats reduces per-call durations to their mean and p99 (nearest-
// rank, clamped to the maximum for small samples).
func latencyStats(times []time.Duration) (mean, p99 time.Duration) {
	var total time.Duration
	for _, d := range times {
		total += d
	}
	mean = total / time.Duration(len(times))
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := min((99*len(sorted)+99)/100, len(sorted)) - 1
	p99 = sorted[idx]
	return mean, p99
}

// String renders a one-line summary.
func (e *Evaluation) String() string {
	return fmt.Sprintf("%-18s coverage=%.3f meanWidth=%.5f p90Width=%.5f latency=%s p99=%s",
		e.Name, e.Coverage, e.Widths.Mean, e.Widths.P90, e.MeanPITime, e.P99PITime)
}
