package cardpi

import (
	"context"
	"fmt"

	"cardpi/internal/cache"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// CacheConfig sizes a Cached wrapper; see NewCached.
type CacheConfig struct {
	// Entries is the total cache capacity (rounded up to the sharded
	// set-associative geometry); <= 0 takes 4096.
	Entries int
	// Shards is the lock-domain count, rounded up to a power of two;
	// <= 0 takes 8. More shards cut contention under concurrent load.
	Shards int
	// Metrics, when non-nil, registers the cardpi_cache_* families there,
	// labeled cache=<Label>. See OBSERVABILITY.md.
	Metrics *obs.Registry
	// Label distinguishes this cache's metric series when several caches
	// share one registry; "" takes "library".
	Label string
}

// Cached memoizes a PI behind the epoch-invalidated interval cache
// (internal/cache): repeated intervals for semantically identical queries
// are served from memory, and N concurrent misses on one key execute
// exactly one underlying Interval call (singleflight).
//
// Identity is the canonical query key — predicate order and equivalent
// range forms are normalized before hashing — and on a miss the wrapped PI
// is invoked with the canonicalized query, so every variant of a query
// maps to one bit-exact result: for any q1, q2 with equal canonical forms,
// Interval(q1) and Interval(q2) return identical bits, equal to
// pi.Interval(workload.Canonicalize(q1)). For already-canonical queries
// (anything from ParseQuery or the workload generator) this is
// indistinguishable from the uncached wrapper.
//
// Cached is for immutable PIs (the calibrated static wrappers). If the
// underlying state changes — a recalibration, a model swap — call
// Invalidate, which makes every cached entry unreachable in O(1). Safe for
// concurrent use whenever the wrapped PI is; steady-state hits perform
// zero heap allocations (enforced by AllocsPerRun tests).
type Cached struct {
	pi PI
	c  *cache.Cache
}

// NewCached wraps pi in an interval cache. The error is reserved for
// invalid configurations; the current geometry rules accept any values.
func NewCached(pi PI, cfg CacheConfig) (*Cached, error) {
	if pi == nil {
		return nil, fmt.Errorf("cardpi: NewCached requires a PI")
	}
	var m *cache.Metrics
	if cfg.Metrics != nil {
		label := cfg.Label
		if label == "" {
			label = "library"
		}
		m = cache.NewMetrics(cfg.Metrics, obs.L("cache", label))
	}
	return &Cached{
		pi: pi,
		c:  cache.New(cache.Config{Entries: cfg.Entries, Shards: cfg.Shards, Metrics: m}),
	}, nil
}

// Name identifies the wrapper and its inner method, e.g. "cached/s-cp/spn".
func (cc *Cached) Name() string { return "cached/" + cc.pi.Name() }

// Interval returns the cached interval for q's canonical form, computing
// (and storing) it through the wrapped PI on a miss. Concurrent misses on
// one key coalesce into a single underlying call; every caller gets the
// leader's result (or error — errors are never cached).
func (cc *Cached) Interval(q workload.Query) (Interval, error) {
	k := cache.KeyOf(q)
	if r, ok := cc.c.Get(k); ok {
		return Interval{Lo: r.Lo, Hi: r.Hi}, nil
	}
	r, _, _, err := cc.c.Do(k, func() (cache.Result, uint64, bool, error) {
		iv, err := cc.pi.Interval(workload.Canonicalize(q))
		if err != nil {
			return cache.Result{}, 0, false, err
		}
		return cache.Result{Lo: iv.Lo, Hi: iv.Hi}, 0, true, nil
	})
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: r.Lo, Hi: r.Hi}, nil
}

// IntervalCtx is Interval under a context: hits and coalesced waits are
// served regardless (they cost no model work); a miss checks ctx before
// computing and forwards it to a context-aware inner PI.
func (cc *Cached) IntervalCtx(ctx context.Context, q workload.Query) (Interval, error) {
	k := cache.KeyOf(q)
	if r, ok := cc.c.Get(k); ok {
		return Interval{Lo: r.Lo, Hi: r.Hi}, nil
	}
	if err := ctx.Err(); err != nil {
		return Interval{}, err
	}
	r, _, _, err := cc.c.Do(k, func() (cache.Result, uint64, bool, error) {
		iv, err := IntervalCtx(ctx, cc.pi, workload.Canonicalize(q))
		if err != nil {
			return cache.Result{}, 0, false, err
		}
		return cache.Result{Lo: iv.Lo, Hi: iv.Hi}, 0, true, nil
	})
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: r.Lo, Hi: r.Hi}, nil
}

// IntervalBatch probes the cache per element and coalesces only the misses
// into one batched call on the wrapped PI (its native BatchPI path when it
// has one), preserving the batch ≡ sequential bit-identity contract. A
// miss-path error fails the whole batch, matching IntervalBatch's
// all-or-nothing semantics. Within-batch duplicate misses are computed
// together in the one underlying call (they do not cross-request
// singleflight); steady-state all-hit batches allocate only the result
// slice.
func (cc *Cached) IntervalBatch(qs []workload.Query) ([]Interval, error) {
	out := make([]Interval, len(qs))
	epoch := cc.c.Epoch().Load()
	var missQs []workload.Query
	var missKeys []cache.Key
	var missIdx []int
	for i, q := range qs {
		k := cache.KeyOf(q)
		if r, ok := cc.c.Get(k); ok {
			out[i] = Interval{Lo: r.Lo, Hi: r.Hi}
			continue
		}
		missQs = append(missQs, workload.Canonicalize(q))
		missKeys = append(missKeys, k)
		missIdx = append(missIdx, i)
	}
	if len(missQs) == 0 {
		return out, nil
	}
	ivs, err := IntervalBatch(cc.pi, missQs)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = ivs[j]
		cc.c.Put(missKeys[j], epoch, cache.Result{Lo: ivs[j].Lo, Hi: ivs[j].Hi})
	}
	return out, nil
}

// Invalidate bumps the cache epoch: every cached interval becomes
// unreachable in O(1) and the next request per key recomputes against the
// wrapped PI's current state. Call it after any mutation of the underlying
// estimator (recalibration, model swap).
func (cc *Cached) Invalidate() { cc.c.Invalidate() }

// CacheLen reports the live cached entries — a sizing probe for tests and
// capacity planning, not a hot-path accessor.
func (cc *Cached) CacheLen() int { return cc.c.Len() }
