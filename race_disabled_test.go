//go:build !race

package cardpi

// raceEnabled reports whether the test binary was built with the race
// detector, which perturbs allocation counts.
const raceEnabled = false
