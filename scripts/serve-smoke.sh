#!/usr/bin/env bash
# serve-smoke.sh — start `cardpi serve` on a small synthetic dataset, hit
# /estimate and /metrics, and assert HTTP 200 plus the documented `cardpi_`
# metric families. Run via `make serve-smoke`; CI runs it on every push so
# the serving stack can't silently rot.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BIN="$(mktemp -d)/cardpi"
LOG="$(mktemp)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$BIN" "$LOG"' EXIT

go build -o "$BIN" ./cmd/cardpi

"$BIN" serve -addr "$ADDR" -rows 2000 -queries 300 -model histogram -method s-cp >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for readiness with bounded exponential backoff: model training takes
# a moment at this scale, but a wedged server must fail the probe quickly
# rather than hang CI.
DELAY=0.1
READY=0
for _ in $(seq 1 12); do
  if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
    READY=1
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve-smoke: server exited early:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep "$DELAY"
  DELAY="$(awk -v d="$DELAY" 'BEGIN { printf "%.2f", (d * 2 > 3) ? 3 : d * 2 }')"
done
if [ "$READY" -ne 1 ]; then
  echo "serve-smoke: health probe never succeeded:" >&2
  cat "$LOG" >&2
  exit 1
fi

echo "serve-smoke: GET /estimate"
curl -fsS "http://$ADDR/estimate?q=state+%3D+3" | tee /dev/stderr | grep -q '"covered"'

echo "serve-smoke: malformed input must 400 with a structured error"
BAD_CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/estimate")"
if [ "$BAD_CODE" != "400" ]; then
  echo "serve-smoke: missing-q request returned $BAD_CODE, want 400" >&2
  exit 1
fi
curl -s "http://$ADDR/estimate" | grep -q '"code"'

echo "serve-smoke: GET /metrics"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
SERIES="$(printf '%s\n' "$METRICS" | grep -c '^cardpi_')"
if [ "$SERIES" -lt 1 ]; then
  echo "serve-smoke: no cardpi_ series in /metrics" >&2
  exit 1
fi
# The documented series families must all be present (OBSERVABILITY.md),
# including the reliability layer's breaker/fallback/shedding telemetry
# (RELIABILITY.md).
for family in cardpi_pi_calls_total cardpi_pi_latency_seconds \
  cardpi_adaptive_coverage cardpi_adaptive_width_mean \
  cardpi_adaptive_drift_statistic cardpi_adaptive_drift_alarms_total \
  cardpi_par_tasks_total cardpi_par_queue_depth \
  cardpi_serve_requests_total cardpi_serve_shed_total \
  cardpi_serve_inflight cardpi_serve_request_seconds \
  cardpi_resilient_calls_total cardpi_resilient_served_total \
  cardpi_resilient_breaker_state; do
  if ! printf '%s\n' "$METRICS" | grep -q "^$family"; then
    echo "serve-smoke: missing metric family $family" >&2
    exit 1
  fi
done

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
echo "serve-smoke: OK ($SERIES cardpi_ series)"
