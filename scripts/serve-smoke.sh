#!/usr/bin/env bash
# serve-smoke.sh — start `cardpi serve` on a small synthetic dataset, hit
# /estimate and /metrics, and assert HTTP 200 plus the documented `cardpi_`
# metric families. Then run the artifact lifecycle end to end: train a
# bundle, inspect it, serve from it without retraining, and assert the
# artifact-backed server returns the same interval as the in-process one.
# Then drive the multi-tenant registry round trip from OPERATIONS.md:
# register two tenants over /admin, promote behind the bit-identity smoke
# check, route with ?tenant=&table=, roll back, and assert the
# cardpi_registry_* metric families. Finally run the drift-probe round trip
# (RELIABILITY.md "Closed-loop recalibration"): mutate the dataset via
# /admin/scenario under a live server, watch the drift alarm fire, and poll
# until the recalibration supervisor swaps a validated chain in — no
# restart. Run via `make serve-smoke`; CI runs it on every push so the
# serving stack can't silently rot.
#
# Style rule: never pipe a producer into `grep -q`. grep -q exits at the
# first match, and under `set -o pipefail` the producer (curl still
# streaming, printf mid-flush, tee) can die of SIGPIPE → exit 141 → a
# spurious, racy failure. Capture output into a variable first, then grep a
# here-string.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
ART_ADDR="${SMOKE_ART_ADDR:-127.0.0.1:18081}"
DRIFT_ADDR="${SMOKE_DRIFT_ADDR:-127.0.0.1:18082}"
CACHE_ADDR="${SMOKE_CACHE_ADDR:-127.0.0.1:18083}"
WORK="$(mktemp -d)"
BIN="$WORK/cardpi"
ART="$WORK/model.cpi"
LOG="$(mktemp)"
ART_LOG="$(mktemp)"
DRIFT_LOG="$(mktemp)"
CACHE_LOG="$(mktemp)"
SERVE_PID=""
ART_PID=""
DRIFT_PID=""
CACHE_PID=""
trap 'kill "$SERVE_PID" "$ART_PID" "$DRIFT_PID" "$CACHE_PID" 2>/dev/null || true; rm -rf "$WORK" "$LOG" "$ART_LOG" "$DRIFT_LOG" "$CACHE_LOG"' EXIT

go build -o "$BIN" ./cmd/cardpi

# wait_ready <addr> <pid> <log> — poll /healthz with bounded exponential
# backoff: model training takes a moment at this scale, but a wedged server
# must fail the probe quickly rather than hang CI.
wait_ready() {
  local addr="$1" pid="$2" log="$3" delay=0.1
  for _ in $(seq 1 12); do
    if curl -fsS --max-time 2 "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve-smoke: server on $addr exited early:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep "$delay"
    delay="$(awk -v d="$delay" 'BEGIN { printf "%.2f", (d * 2 > 3) ? 3 : d * 2 }')"
  done
  echo "serve-smoke: health probe on $addr never succeeded:" >&2
  cat "$log" >&2
  exit 1
}

"$BIN" serve -addr "$ADDR" -rows 2000 -queries 300 -model histogram -method s-cp >"$LOG" 2>&1 &
SERVE_PID=$!
wait_ready "$ADDR" "$SERVE_PID" "$LOG"

echo "serve-smoke: GET /estimate"
EST="$(curl -fsS "http://$ADDR/estimate?q=state+%3D+3")"
printf '%s\n' "$EST" >&2
grep -q '"covered"' <<<"$EST"

echo "serve-smoke: /healthz reports in-process training"
HEALTH="$(curl -fsS "http://$ADDR/healthz")"
grep -q '"model_source": "trained"' <<<"$HEALTH"

echo "serve-smoke: malformed input must 400 with a structured error"
BAD_CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/estimate")"
if [ "$BAD_CODE" != "400" ]; then
  echo "serve-smoke: missing-q request returned $BAD_CODE, want 400" >&2
  exit 1
fi
BAD_BODY="$(curl -s "http://$ADDR/estimate")"
grep -q '"code"' <<<"$BAD_BODY"

echo "serve-smoke: POST /estimate/batch agrees element-wise with GET /estimate"
BATCH="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"queries": ["state = 3", "model_year BETWEEN 40 AND 90"]}' \
  "http://$ADDR/estimate/batch")"
grep -q '"count": 2' <<<"$BATCH"
# The batch response must carry, element for element and in order, exactly
# the estimate/interval fields the single endpoint returns for the same
# queries (indentation differs between the nested and flat encodings, so
# compare with leading whitespace stripped).
BATCH_LINES="$(printf '%s\n' "$BATCH" | grep -E '"(interval_|estimate_)' | sed 's/^ *//')"
SINGLE_LINES="$( { curl -fsS "http://$ADDR/estimate?q=state+%3D+3"; \
  curl -fsS "http://$ADDR/estimate?q=model_year+BETWEEN+40+AND+90"; } \
  | grep -E '"(interval_|estimate_)' | sed 's/^ *//')"
if [ "$BATCH_LINES" != "$SINGLE_LINES" ]; then
  echo "serve-smoke: batch response disagrees with single estimates" >&2
  printf 'batch:\n%s\nsingle:\n%s\n' "$BATCH_LINES" "$SINGLE_LINES" >&2
  exit 1
fi

echo "serve-smoke: JSON and binary wire formats agree element-wise"
# The batch client normalises both formats to identical %.17g lines, so any
# bit difference between the JSON and binary encodings of one result set
# fails the diff. (Rolling-coverage telemetry is excluded by the client: it
# advances with every observed query by design.)
WIRE_JSON="$("$BIN" batch -addr "$ADDR" -format json "state = 3" "model_year BETWEEN 40 AND 90")"
WIRE_BIN="$("$BIN" batch -addr "$ADDR" -format binary "state = 3" "model_year BETWEEN 40 AND 90")"
if [ -z "$WIRE_JSON" ] || [ "$WIRE_JSON" != "$WIRE_BIN" ]; then
  echo "serve-smoke: wire formats disagree" >&2
  printf 'json:\n%s\nbinary:\n%s\n' "$WIRE_JSON" "$WIRE_BIN" >&2
  exit 1
fi

echo "serve-smoke: malformed binary frame must 400 with invalid_wire"
BAD_WIRE_CODE="$(printf 'XXXXgarbage' | curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Content-Type: application/x-cardpi-batch' --data-binary @- "http://$ADDR/estimate/batch")"
if [ "$BAD_WIRE_CODE" != "400" ]; then
  echo "serve-smoke: malformed binary batch returned $BAD_WIRE_CODE, want 400" >&2
  exit 1
fi
BAD_WIRE_BODY="$(printf 'XXXXgarbage' | curl -s -X POST -H 'Content-Type: application/x-cardpi-batch' \
  --data-binary @- "http://$ADDR/estimate/batch")"
grep -q 'invalid_wire' <<<"$BAD_WIRE_BODY"

echo "serve-smoke: malformed batch element must 400 and name the element"
BAD_BATCH_CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"queries": ["state = 3", "definitely not sql"]}' "http://$ADDR/estimate/batch")"
if [ "$BAD_BATCH_CODE" != "400" ]; then
  echo "serve-smoke: malformed batch returned $BAD_BATCH_CODE, want 400" >&2
  exit 1
fi
BAD_BATCH_BODY="$(curl -s -X POST -d '{"queries": ["state = 3", "definitely not sql"]}' \
  "http://$ADDR/estimate/batch")"
grep -q 'query 1' <<<"$BAD_BATCH_BODY"

echo "serve-smoke: GET /metrics"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
SERIES="$(printf '%s\n' "$METRICS" | grep -c '^cardpi_')"
if [ "$SERIES" -lt 1 ]; then
  echo "serve-smoke: no cardpi_ series in /metrics" >&2
  exit 1
fi
# The documented series families must all be present (OBSERVABILITY.md),
# including the reliability layer's breaker/fallback/shedding telemetry
# (RELIABILITY.md).
for family in cardpi_pi_calls_total cardpi_pi_latency_seconds \
  cardpi_adaptive_coverage cardpi_adaptive_width_mean \
  cardpi_adaptive_drift_statistic cardpi_adaptive_drift_alarms_total \
  cardpi_par_tasks_total cardpi_par_queue_depth \
  cardpi_serve_requests_total cardpi_serve_shed_total \
  cardpi_serve_inflight cardpi_serve_request_seconds \
  cardpi_serve_batch_requests_total cardpi_serve_batch_size \
  cardpi_serve_batch_request_seconds cardpi_serve_batch_wire_total \
  cardpi_resilient_calls_total cardpi_resilient_served_total \
  cardpi_resilient_breaker_state \
  cardpi_recal_state cardpi_recal_attempts_total \
  cardpi_recal_success_total cardpi_recal_window_size; do
  if ! grep -q "^$family" <<<"$METRICS"; then
    echo "serve-smoke: missing metric family $family" >&2
    exit 1
  fi
done
# Both wire formats were exercised above, so both labelled series must exist.
for label in 'wire_format="json"' 'wire_format="binary"'; do
  if ! grep -q "^cardpi_serve_batch_wire_total{$label}" <<<"$METRICS"; then
    echo "serve-smoke: missing cardpi_serve_batch_wire_total{$label} series" >&2
    exit 1
  fi
done

# --- artifact lifecycle: train → inspect → serve -artifact → compare ------
# Same dataset/model/method/seed as the in-process server above, so the
# frozen calibration state must reproduce its intervals exactly.

echo "serve-smoke: cardpi train"
"$BIN" train -dataset dmv -rows 2000 -queries 300 -model histogram -method s-cp -out "$ART"

echo "serve-smoke: cardpi inspect"
INSPECT="$("$BIN" inspect "$ART")"
printf '%s\n' "$INSPECT" >&2
grep -q 'histogram / s-cp' <<<"$INSPECT"

echo "serve-smoke: serve -artifact"
"$BIN" serve -addr "$ART_ADDR" -artifact "$ART" -synth-admin -synth-dir "$WORK/synth" >"$ART_LOG" 2>&1 &
ART_PID=$!
wait_ready "$ART_ADDR" "$ART_PID" "$ART_LOG"
grep -q 'model source: artifact' "$ART_LOG"

echo "serve-smoke: /healthz reports the artifact"
HEALTH="$(curl -fsS "http://$ART_ADDR/healthz")"
grep -q '"model_source": "artifact"' <<<"$HEALTH"
grep -q '"dataset": "dmv"' <<<"$HEALTH"

echo "serve-smoke: artifact-backed intervals match the in-process server"
Q="state+%3D+3"
IV_TRAINED="$(curl -fsS "http://$ADDR/estimate?q=$Q" | grep -E '"(interval_|estimate_)')"
IV_ARTIFACT="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q" | grep -E '"(interval_|estimate_)')"
if [ "$IV_TRAINED" != "$IV_ARTIFACT" ]; then
  echo "serve-smoke: interval mismatch between trained and artifact servers" >&2
  printf 'trained:\n%s\nartifact:\n%s\n' "$IV_TRAINED" "$IV_ARTIFACT" >&2
  exit 1
fi

echo "serve-smoke: artifact provenance gauge on /metrics"
ART_METRICS="$(curl -fsS "http://$ART_ADDR/metrics")"
grep -q '^cardpi_serve_artifact_info{model="histogram",method="s-cp",dataset="dmv"' <<<"$ART_METRICS"

# --- registry lifecycle: register → promote → route → rollback ------------
# Two tenants share the artifact server (OPERATIONS.md walks this same
# session by hand). Routed answers must be bit-identical to the unrouted
# default-bundle answer because both load the very same .cpi bytes.

# admin_post <path> <json> <want_status> [want_code] — POST an admin body,
# assert the status (and, for errors, the machine-readable error code), and
# leave the response body in ADMIN_OUT.
ADMIN_OUT=""
admin_post() {
  local path="$1" body="$2" want="$3" code="${4:-}"
  local out status
  out="$(curl -s -w '\n%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d "$body" "http://$ART_ADDR$path")"
  status="${out##*$'\n'}"
  out="${out%$'\n'*}"
  if [ "$status" != "$want" ]; then
    echo "serve-smoke: POST $path returned $status, want $want: $out" >&2
    exit 1
  fi
  if [ -n "$code" ] && ! grep -q "\"$code\"" <<<"$out"; then
    echo "serve-smoke: POST $path missing error code $code: $out" >&2
    exit 1
  fi
  ADMIN_OUT="$out"
}

echo "serve-smoke: routed request before any promote must 404 unknown_bundle"
PRE_CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ART_ADDR/estimate?q=$Q&tenant=acme&table=dmv")"
if [ "$PRE_CODE" != "404" ]; then
  echo "serve-smoke: unrouted tenant returned $PRE_CODE, want 404" >&2
  exit 1
fi

echo "serve-smoke: register + promote acme/dmv and globex/dmv"
admin_post /admin/register "{\"tenant\":\"acme\",\"table\":\"dmv\",\"artifact\":\"$ART\"}" 200
grep -q '"version": 1' <<<"$ADMIN_OUT"
admin_post /admin/promote '{"tenant":"acme","table":"dmv"}' 200
grep -q '"active_version": 1' <<<"$ADMIN_OUT"
admin_post /admin/register "{\"tenant\":\"globex\",\"table\":\"dmv\",\"artifact\":\"$ART\"}" 200
admin_post /admin/promote '{"tenant":"globex","table":"dmv"}' 200

echo "serve-smoke: routed intervals are bit-identical to the default bundle"
ROUTED="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q&tenant=acme&table=dmv")"
grep -q '"bundle": "acme/dmv@v1"' <<<"$ROUTED"
IV_ROUTED="$(printf '%s\n' "$ROUTED" | grep -E '"(interval_|estimate_)')"
if [ "$IV_ROUTED" != "$IV_ARTIFACT" ]; then
  echo "serve-smoke: routed interval disagrees with the default bundle" >&2
  printf 'routed:\n%s\ndefault:\n%s\n' "$IV_ROUTED" "$IV_ARTIFACT" >&2
  exit 1
fi

echo "serve-smoke: routed wire formats agree element-wise"
TEN_JSON="$("$BIN" batch -addr "$ART_ADDR" -tenant globex -table dmv -format json "state = 3")"
TEN_BIN="$("$BIN" batch -addr "$ART_ADDR" -tenant globex -table dmv -format binary "state = 3")"
if [ -z "$TEN_JSON" ] || [ "$TEN_JSON" != "$TEN_BIN" ]; then
  echo "serve-smoke: routed wire formats disagree" >&2
  printf 'json:\n%s\nbinary:\n%s\n' "$TEN_JSON" "$TEN_BIN" >&2
  exit 1
fi

echo "serve-smoke: same-recipe v2 passes the smoke check; rollback restores v1"
admin_post /admin/register "{\"tenant\":\"acme\",\"table\":\"dmv\",\"artifact\":\"$ART\"}" 200
grep -q '"version": 2' <<<"$ADMIN_OUT"
admin_post /admin/promote '{"tenant":"acme","table":"dmv","version":2}' 200
grep -q '"active_version": 2' <<<"$ADMIN_OUT"
admin_post /admin/rollback '{"tenant":"acme","table":"dmv"}' 200
grep -q '"active_version": 1' <<<"$ADMIN_OUT"
ROLLED="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q&tenant=acme&table=dmv")"
grep -q '"bundle": "acme/dmv@v1"' <<<"$ROLLED"

echo "serve-smoke: a different-seed candidate must be refused with smoke_mismatch"
ART2="$WORK/model-seed2.cpi"
"$BIN" train -dataset dmv -rows 2000 -queries 300 -model histogram -method s-cp -seed 2 -out "$ART2"
admin_post /admin/register "{\"tenant\":\"acme\",\"table\":\"dmv\",\"artifact\":\"$ART2\"}" 200
grep -q '"version": 3' <<<"$ADMIN_OUT"
admin_post /admin/promote '{"tenant":"acme","table":"dmv","version":3}' 409 smoke_mismatch
# The failed promote changed nothing: v1 keeps answering.
AFTER_REFUSED="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q&tenant=acme&table=dmv")"
grep -q '"bundle": "acme/dmv@v1"' <<<"$AFTER_REFUSED"

echo "serve-smoke: GET /admin/registry lists both tenants"
REGISTRY="$(curl -fsS "http://$ART_ADDR/admin/registry")"
grep -q '"tenant": "acme"' <<<"$REGISTRY"
grep -q '"tenant": "globex"' <<<"$REGISTRY"

echo "serve-smoke: cardpi_registry_* metric families on /metrics"
REG_METRICS="$(curl -fsS "http://$ART_ADDR/metrics")"
for family in cardpi_registry_entries cardpi_registry_bundles_cached \
  cardpi_registry_registered_total cardpi_registry_loads_total \
  cardpi_registry_promotes_total cardpi_registry_rollbacks_total \
  cardpi_registry_smoke_failures_total cardpi_registry_faults_total; do
  if ! grep -q "^$family" <<<"$REG_METRICS"; then
    echo "serve-smoke: missing metric family $family" >&2
    exit 1
  fi
done
# Both tenants served routed traffic, so both labelled series must exist.
for label in 'tenant="acme"' 'tenant="globex"'; do
  if ! grep -q "^cardpi_registry_requests_total{$label}" <<<"$REG_METRICS"; then
    echo "serve-smoke: missing cardpi_registry_requests_total{$label} series" >&2
    exit 1
  fi
done

# --- synth round trip: /admin/synth → registered candidate → promote ------
# Synthesize a replacement for globex/dmv from its registered provenance.
# The winner must land in the registry as a promotable candidate (v2, not
# active) and then serve through the ordinary promote path.

echo "serve-smoke: POST /admin/synth registers a candidate for globex/dmv"
admin_post /admin/synth '{"tenant":"globex","table":"dmv","models":["histogram"],"methods":["s-cp","mondrian"],"eval_queries":100,"workers":2}' 200
printf '%s\n' "$ADMIN_OUT" >&2
grep -q '"registered_version": 2' <<<"$ADMIN_OUT"
grep -q '"model": "histogram"' <<<"$ADMIN_OUT"
grep -q '"summary"' <<<"$ADMIN_OUT"

echo "serve-smoke: the synth candidate is registered but not auto-promoted"
REGISTRY_SYNTH="$(curl -fsS "http://$ART_ADDR/admin/registry")"
SYNTH_ENTRY="$(grep -A 3 '"tenant": "globex"' <<<"$REGISTRY_SYNTH")"
grep -q '"active_version": 1' <<<"$SYNTH_ENTRY"

echo "serve-smoke: promoting the synth candidate serves it"
admin_post /admin/promote '{"tenant":"globex","table":"dmv","version":2,"force":true}' 200
grep -q '"active_version": 2' <<<"$ADMIN_OUT"
SYNTH_ROUTED="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q&tenant=globex&table=dmv")"
grep -q '"bundle": "globex/dmv@v2"' <<<"$SYNTH_ROUTED"
grep -q '"covered"' <<<"$SYNTH_ROUTED"

echo "serve-smoke: cardpi_synth_* metric families on /metrics"
SYNTH_METRICS="$(curl -fsS "http://$ART_ADDR/metrics")"
for family in cardpi_synth_runs_total cardpi_synth_trials_total \
  cardpi_synth_best_score cardpi_synth_wall_seconds; do
  if ! grep -q "^$family" <<<"$SYNTH_METRICS"; then
    echo "serve-smoke: missing metric family $family" >&2
    exit 1
  fi
done

# --- interval cache: hit → bit-equality → promote invalidation ------------
# A dedicated cache-on server loads the same artifact as the cache-off
# artifact server above, so every cached answer has a fresh reference to be
# bit-compared against. The `cached` marker is JSON-only and omitempty:
# a miss response carries no "cached" line at all.

echo "serve-smoke: boot a cache-on server from the same artifact"
"$BIN" serve -addr "$CACHE_ADDR" -artifact "$ART" -recal=false -cache-entries 256 >"$CACHE_LOG" 2>&1 &
CACHE_PID=$!
wait_ready "$CACHE_ADDR" "$CACHE_PID" "$CACHE_LOG"

echo "serve-smoke: first read misses, repeat read is served from the cache"
COLD="$(curl -fsS "http://$CACHE_ADDR/estimate?q=$Q")"
if grep -q '"cached"' <<<"$COLD"; then
  echo "serve-smoke: cold read claims to be cached:" >&2
  printf '%s\n' "$COLD" >&2
  exit 1
fi
WARM="$(curl -fsS "http://$CACHE_ADDR/estimate?q=$Q")"
grep -q '"cached": true' <<<"$WARM"

echo "serve-smoke: cached response is bit-identical to the uncached servers"
# Compare every numeric estimate field — the live telemetry lines
# (drifted, rolling_coverage) and the cached marker legitimately differ,
# so only the interval/estimate/truth fields are held to bit-equality.
# IV_ARTIFACT is the cache-off artifact server's answer for the same $Q.
iv_lines() { grep -E '"(interval_|estimate_|true_rows|covered)' <<<"$1" | sed 's/^ *//'; }
IV_COLD="$(iv_lines "$COLD")"
IV_WARM="$(iv_lines "$WARM")"
IV_OFF="$(curl -fsS "http://$ART_ADDR/estimate?q=$Q" | grep -E '"(interval_|estimate_|true_rows|covered)' | sed 's/^ *//')"
if [ "$IV_COLD" != "$IV_WARM" ] || [ "$IV_WARM" != "$IV_OFF" ]; then
  echo "serve-smoke: cached interval is not bit-identical" >&2
  printf 'cold:\n%s\nwarm:\n%s\ncache-off:\n%s\n' "$IV_COLD" "$IV_WARM" "$IV_OFF" >&2
  exit 1
fi

echo "serve-smoke: cardpi_cache_* metric families on /metrics"
CACHE_METRICS="$(curl -fsS "http://$CACHE_ADDR/metrics")"
for family in cardpi_cache_hits_total cardpi_cache_misses_total \
  cardpi_cache_coalesced_total cardpi_cache_evictions_total \
  cardpi_cache_epoch_invalidations_total cardpi_cache_size \
  cardpi_cache_epoch; do
  if ! grep -q "^$family" <<<"$CACHE_METRICS"; then
    echo "serve-smoke: missing metric family $family" >&2
    exit 1
  fi
done
HITS="$(awk -F' ' '/^cardpi_cache_hits_total\{unit="default"\}/ {print $2}' <<<"$CACHE_METRICS")"
if [ -z "$HITS" ] || [ "$HITS" = "0" ]; then
  echo "serve-smoke: no cache hits recorded after a repeat read (hits=$HITS)" >&2
  exit 1
fi
grep -q '^cardpi_cache_epoch 0' <<<"$CACHE_METRICS"

echo "serve-smoke: a promote bumps the epoch and empties the cache"
CACHE_PROMOTE="$(curl -s -w '\n%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "{\"tenant\":\"cacheco\",\"table\":\"dmv\",\"artifact\":\"$ART\"}" "http://$CACHE_ADDR/admin/register")"
if [ "${CACHE_PROMOTE##*$'\n'}" != "200" ]; then
  echo "serve-smoke: cache-server register failed: $CACHE_PROMOTE" >&2
  exit 1
fi
CACHE_PROMOTE="$(curl -s -w '\n%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"tenant":"cacheco","table":"dmv"}' "http://$CACHE_ADDR/admin/promote")"
if [ "${CACHE_PROMOTE##*$'\n'}" != "200" ]; then
  echo "serve-smoke: cache-server promote failed: $CACHE_PROMOTE" >&2
  exit 1
fi
POST_PROMOTE_METRICS="$(curl -fsS "http://$CACHE_ADDR/metrics")"
grep -q '^cardpi_cache_epoch 1' <<<"$POST_PROMOTE_METRICS"
AFTER_PROMOTE="$(curl -fsS "http://$CACHE_ADDR/estimate?q=$Q")"
if grep -q '"cached"' <<<"$AFTER_PROMOTE"; then
  echo "serve-smoke: first read after a promote was served from the stale cache:" >&2
  printf '%s\n' "$AFTER_PROMOTE" >&2
  exit 1
fi
IV_AFTER="$(iv_lines "$AFTER_PROMOTE")"
if [ "$IV_AFTER" != "$IV_OFF" ]; then
  echo "serve-smoke: post-promote refill disagrees with the cache-off server" >&2
  printf 'after:\n%s\ncache-off:\n%s\n' "$IV_AFTER" "$IV_OFF" >&2
  exit 1
fi
REPEAT_AFTER="$(curl -fsS "http://$CACHE_ADDR/estimate?q=$Q")"
grep -q '"cached": true' <<<"$REPEAT_AFTER"

# --- drift probe: mutate → alarm → recalibrate → swap, no restart ---------
# A third server with the scenario admin open and the recalibration
# supervisor tuned for a short drill (small window, fast backoff, relaxed
# width cap — a total-rewrite shift legitimately needs wide intervals).
# The flow mirrors TestScenarioDriftRecoveryWithoutRestart: warm the
# labeled-observation window, corrupt the live table over /admin/scenario,
# then keep driving traffic until GET /admin/recal reports a swap.

echo "serve-smoke: drift probe — boot with -scenario-admin and fast recal knobs"
"$BIN" serve -addr "$DRIFT_ADDR" -rows 2000 -queries 300 -model histogram -method s-cp \
  -scenario-admin -recal-window 256 -recal-min-observed 96 \
  -recal-backoff 100ms -recal-width-cap 2 >"$DRIFT_LOG" 2>&1 &
DRIFT_PID=$!
wait_ready "$DRIFT_ADDR" "$DRIFT_PID" "$DRIFT_LOG"

# Hot-decile, cold, and multi-predicate queries over the synthetic DMV
# schema — the mutations below rewrite rows into each column's top decile,
# so the hot queries are where the frozen model goes stale.
DRIFT_POOL=(
  "state+%3D+47" "county+%3D+58" "model_year+BETWEEN+108+AND+119"
  "state+%3D+46" "fuel_type+%3D+8" "color+%3D+19"
  "state+%3D+3" "county+%3D+10" "model_year+BETWEEN+20+AND+60" "body_type+%3D+2"
  "state+%3D+47+AND+model_year+BETWEEN+100+AND+119" "county+%3D+60+AND+body_type+%3D+28"
)
drift_drive() { # drift_drive <n> — n labeled requests cycling the pool
  local n="$1" i q
  for i in $(seq 1 "$n"); do
    q="${DRIFT_POOL[$((i % ${#DRIFT_POOL[@]}))]}"
    curl -fsS "http://$DRIFT_ADDR/estimate?q=$q" >/dev/null
  done
}

echo "serve-smoke: drift probe — warm the observation window"
drift_drive 120
WARM="$(curl -fsS "http://$DRIFT_ADDR/admin/recal")"
grep -q '"enabled": true' <<<"$WARM"
grep -q '"drifted": false' <<<"$WARM"

echo "serve-smoke: drift probe — mutate the live table"
DEGRADE="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"action":"degrade","health":0,"seed":5}' "http://$DRIFT_ADDR/admin/scenario")"
grep -q '"changed"' <<<"$DEGRADE"
INSERT="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"action":"insert","rows":1000,"seed":6}' "http://$DRIFT_ADDR/admin/scenario")"
grep -q '"rows": 3000' <<<"$INSERT"

echo "serve-smoke: drift probe — drive traffic until the supervisor swaps"
RECAL_STATUS=""
SWAPPED=0
for _ in $(seq 1 60); do
  drift_drive 20
  RECAL_STATUS="$(curl -fsS "http://$DRIFT_ADDR/admin/recal")"
  if grep -qE '"swaps": [1-9]' <<<"$RECAL_STATUS"; then
    SWAPPED=1
    break
  fi
done
if [ "$SWAPPED" != "1" ]; then
  echo "serve-smoke: recalibration never swapped; last /admin/recal:" >&2
  printf '%s\n' "$RECAL_STATUS" >&2
  cat "$DRIFT_LOG" >&2
  exit 1
fi
printf '%s\n' "$RECAL_STATUS" >&2

echo "serve-smoke: drift probe — recalibrated chain is serving"
grep -q 'recal-cp' <<<"$RECAL_STATUS"
POST_SWAP="$(curl -fsS "http://$DRIFT_ADDR/estimate?q=state+%3D+47")"
grep -q 'recal' <<<"$POST_SWAP"

echo "serve-smoke: drift probe — alarm and recal telemetry on /metrics"
DRIFT_METRICS="$(curl -fsS "http://$DRIFT_ADDR/metrics")"
ALARMS="$(awk '/^cardpi_adaptive_drift_alarms_total/ {print $2}' <<<"$DRIFT_METRICS")"
if [ -z "$ALARMS" ] || [ "$ALARMS" = "0" ]; then
  echo "serve-smoke: drift alarm never fired (cardpi_adaptive_drift_alarms_total=$ALARMS)" >&2
  exit 1
fi
RECAL_OK="$(awk '/^cardpi_recal_success_total/ {print $2}' <<<"$DRIFT_METRICS")"
if [ -z "$RECAL_OK" ] || [ "$RECAL_OK" = "0" ]; then
  echo "serve-smoke: no recalibration success recorded (cardpi_recal_success_total=$RECAL_OK)" >&2
  exit 1
fi

echo "serve-smoke: drift probe — manual trigger endpoint answers"
TRIGGER="$(curl -fsS -X POST "http://$DRIFT_ADDR/admin/recal/trigger")"
grep -q '"triggered": true' <<<"$TRIGGER"

kill -INT "$SERVE_PID" "$ART_PID" "$DRIFT_PID" "$CACHE_PID"
wait "$SERVE_PID" "$ART_PID" "$DRIFT_PID" "$CACHE_PID"
echo "serve-smoke: OK ($SERIES cardpi_ series, artifact + registry + cache + drift round trips verified)"
