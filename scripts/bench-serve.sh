#!/usr/bin/env bash
# bench-serve.sh — record the serving-layer interval-cache speedup as
# BENCH_serve.json. Boots two identically configured `cardpi serve`
# processes (same dataset, model, method, seed; recalibration off so
# nothing swaps chains mid-run), one with the interval cache enabled and
# one without, then replays the same Zipfian-popularity query universe
# against both with `cardpi loadgen` in compare mode. The run fails unless
# the cache-on server sustains at least MIN_SPEEDUP x the cache-off
# queries/sec — the acceptance bar for the cache to exist at all.
#
# Run via `make bench-serve`; CI runs it on every push so the speedup
# claim in BENCH_serve.json can't silently rot.
#
# Style rule: never pipe a producer into `grep -q`. grep -q exits at the
# first match, and under `set -o pipefail` the producer can die of
# SIGPIPE → exit 141 → a spurious, racy failure. Capture output into a
# variable first, then grep a here-string.
set -euo pipefail

ON_ADDR="${BENCH_ON_ADDR:-127.0.0.1:18090}"
OFF_ADDR="${BENCH_OFF_ADDR:-127.0.0.1:18091}"
OUT="${BENCH_SERVE_OUT:-BENCH_serve.json}"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-5}"
DURATION="${BENCH_DURATION:-5s}"
WARMUP="${BENCH_WARMUP:-1s}"
ROWS=20000
TRAIN_QUERIES=500

WORK="$(mktemp -d)"
BIN="$WORK/cardpi"
ON_LOG="$(mktemp)"
OFF_LOG="$(mktemp)"
ON_PID=""
OFF_PID=""
trap 'kill "$ON_PID" "$OFF_PID" 2>/dev/null || true; rm -rf "$WORK" "$ON_LOG" "$OFF_LOG"' EXIT

go build -o "$BIN" ./cmd/cardpi

# wait_ready <addr> <pid> <log> — poll /healthz with bounded exponential
# backoff: model training takes a moment, but a wedged server must fail
# the probe quickly rather than hang CI.
wait_ready() {
  local addr="$1" pid="$2" log="$3" delay=0.1
  for _ in $(seq 1 12); do
    if curl -fsS --max-time 2 "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "bench-serve: server on $addr exited early:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep "$delay"
    delay="$(awk -v d="$delay" 'BEGIN { printf "%.2f", (d * 2 > 3) ? 3 : d * 2 }')"
  done
  echo "bench-serve: health probe on $addr never succeeded:" >&2
  cat "$log" >&2
  exit 1
}

# Identical recipes; the only difference between the two processes is
# -cache-entries. -recal=false pins both chains for the whole run so the
# comparison measures the cache, not a mid-run recalibration swap.
COMMON=(-rows "$ROWS" -queries "$TRAIN_QUERIES" -model histogram -method s-cp -recal=false)

echo "bench-serve: booting cache-on ($ON_ADDR) and cache-off ($OFF_ADDR) servers"
"$BIN" serve -addr "$ON_ADDR" "${COMMON[@]}" -cache-entries 4096 >"$ON_LOG" 2>&1 &
ON_PID=$!
"$BIN" serve -addr "$OFF_ADDR" "${COMMON[@]}" >"$OFF_LOG" 2>&1 &
OFF_PID=$!
wait_ready "$ON_ADDR" "$ON_PID" "$ON_LOG"
wait_ready "$OFF_ADDR" "$OFF_PID" "$OFF_LOG"

echo "bench-serve: loadgen zipf(s=1.1) compare run ($DURATION per server)"
"$BIN" loadgen \
  -addr "$ON_ADDR" -baseline-addr "$OFF_ADDR" \
  -dataset dmv -rows "$ROWS" -universe 1000 -seed 1 \
  -dist zipf -zipf-s 1.1 -concurrency 8 \
  -duration "$DURATION" -warmup "$WARMUP" \
  -batch 256 -format wire \
  -min-speedup "$MIN_SPEEDUP" -out "$OUT"

# The report must actually record the compare-mode fields the Makefile and
# CI consumers read.
REPORT="$(cat "$OUT")"
grep -q '"speedup_qps"' <<<"$REPORT"
grep -q '"baseline"' <<<"$REPORT"

# The cache-on server must show real cache traffic, or the "speedup" is
# measuring something else entirely.
METRICS="$(curl -fsS "http://$ON_ADDR/metrics")"
HITS="$(awk '/^cardpi_cache_hits_total/ {print $2}' <<<"$METRICS")"
if [ -z "$HITS" ] || [ "$HITS" = "0" ]; then
  echo "bench-serve: cache-on server recorded no cache hits (cardpi_cache_hits_total=$HITS)" >&2
  exit 1
fi

kill -INT "$ON_PID" "$OFF_PID"
wait "$ON_PID" "$OFF_PID"
echo "bench-serve: OK ($OUT written, $HITS cache hits on the target server)"
