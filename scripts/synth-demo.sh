#!/usr/bin/env bash
# synth-demo.sh — end-to-end demo of `cardpi synth`: run a budget-aware
# estimator synthesis over the full family set on a small census workload,
# then prove every promise the leaderboard makes:
#
#   1. the leaderboard parses, its checksum verifies, and it holds >= 8
#      scored trials plus >= 1 statically budget-pruned trial with a
#      recorded reason (naru's artifact lower bound cannot fit 128 KiB);
#   2. the winning bundle round-trips through `cardpi inspect`;
#   3. `cardpi serve -artifact` loads the winner and answers /estimate.
#
# Run via `make synth-demo`.
#
# Style rule (shared with serve-smoke.sh): never pipe a producer into
# `grep -q` — capture to a variable first, then grep a here-string, so a
# SIGPIPE can't turn into a spurious exit 141.
set -euo pipefail

ADDR="${SYNTH_ADDR:-127.0.0.1:18083}"
WORK="$(mktemp -d)"
BIN="$WORK/cardpi"
OUT="$WORK/best.cpi"
LB="$OUT.leaderboard.json"
LOG="$(mktemp)"
SERVE_PID=""
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK" "$LOG"' EXIT

go build -o "$BIN" ./cmd/cardpi

echo "synth-demo: cardpi synth (census, 128 KiB artifact budget)"
"$BIN" synth -dataset census -rows 2000 -queries 300 -eval-queries 150 \
  -epochs 2 -budget-artifact-bytes 131072 -workers 2 -out "$OUT"

echo "synth-demo: leaderboard parses and the checksum verifies"
INSPECT_LB="$("$BIN" inspect "$LB")"
printf '%s\n' "$INSPECT_LB" >&2
grep -q 'checksum ok' <<<"$INSPECT_LB"
grep -q 'why it won' <<<"$INSPECT_LB"

SCORED="$(grep -c '"status": "scored"' "$LB")"
if [ "$SCORED" -lt 8 ]; then
  echo "synth-demo: only $SCORED scored trials, want >= 8" >&2
  exit 1
fi
PRUNED="$(grep -c '"status": "pruned"' "$LB")"
if [ "$PRUNED" -lt 1 ]; then
  echo "synth-demo: no budget-pruned trial; the naru size bound should prune under 128 KiB" >&2
  exit 1
fi
LB_TEXT="$(cat "$LB")"
grep -q 'never trained' <<<"$LB_TEXT"

echo "synth-demo: found $SCORED scored and $PRUNED pruned trials"

echo "synth-demo: the winning bundle round-trips through inspect"
INSPECT_ART="$("$BIN" inspect "$OUT")"
printf '%s\n' "$INSPECT_ART" >&2
grep -q 'cardpi artifact' <<<"$INSPECT_ART"
grep -q 'table fingerprint' <<<"$INSPECT_ART"

echo "synth-demo: serve -artifact answers /estimate from the winner"
"$BIN" serve -addr "$ADDR" -artifact "$OUT" >"$LOG" 2>&1 &
SERVE_PID=$!
delay=0.1
for _ in $(seq 1 12); do
  if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "synth-demo: server exited early:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep "$delay"
  delay="$(awk -v d="$delay" 'BEGIN { printf "%.2f", (d * 2 > 3) ? 3 : d * 2 }')"
done
EST="$(curl -fsS "http://$ADDR/estimate?q=age+%3D+3")"
printf '%s\n' "$EST" >&2
grep -q '"covered"' <<<"$EST"

echo "synth-demo: ok"
