#!/usr/bin/env bash
# registry-demo.sh — the OPERATIONS.md "worked multi-tenant session",
# automated: train two artifacts, boot one server, register + promote a
# bundle per tenant over /admin, query each tenant's bundle, roll out a v2
# and roll it back, then dump the registry snapshot and metrics. Run via
# `make registry-demo`. Unlike serve-smoke.sh (the headless CI gate), this
# script narrates every step and prints the actual server responses.
set -euo pipefail

ADDR="${DEMO_ADDR:-127.0.0.1:18090}"
WORK="$(mktemp -d)"
BIN="$WORK/cardpi"
LOG="$(mktemp)"
SERVE_PID=""
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK" "$LOG"' EXIT

say() { printf '\n== %s\n' "$*"; }

go build -o "$BIN" ./cmd/cardpi

say "train one artifact per tenant (plus a v2 from the same recipe)"
"$BIN" train -dataset census -rows 2000 -queries 300 -model histogram -method s-cp -out "$WORK/census-v1.cpi" >/dev/null
"$BIN" train -dataset census -rows 2000 -queries 300 -model histogram -method s-cp -out "$WORK/census-v2.cpi" >/dev/null
"$BIN" train -dataset dmv -rows 2000 -queries 300 -model histogram -method s-cp -out "$WORK/dmv-v1.cpi" >/dev/null
ls -l "$WORK"/*.cpi

say "serve the dmv artifact as the default bundle (and registry host)"
"$BIN" serve -addr "$ADDR" -artifact "$WORK/dmv-v1.cpi" >"$LOG" 2>&1 &
SERVE_PID=$!
delay=0.1
for _ in $(seq 1 12); do
  curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "registry-demo: server exited early:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep "$delay"
  delay="$(awk -v d="$delay" 'BEGIN { printf "%.2f", (d * 2 > 3) ? 3 : d * 2 }')"
done
curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null

say "register + promote acme/census"
curl -s -X POST "http://$ADDR/admin/register" \
  -d "{\"tenant\": \"acme\", \"table\": \"census\", \"artifact\": \"$WORK/census-v1.cpi\"}"
curl -s -X POST "http://$ADDR/admin/promote" \
  -d '{"tenant": "acme", "table": "census"}'

say "register + promote globex/dmv"
curl -s -X POST "http://$ADDR/admin/register" \
  -d "{\"tenant\": \"globex\", \"table\": \"dmv\", \"artifact\": \"$WORK/dmv-v1.cpi\"}" >/dev/null
curl -s -X POST "http://$ADDR/admin/promote" \
  -d '{"tenant": "globex", "table": "dmv"}'

say "each tenant queries its own bundle (note the bundle field)"
curl -s "http://$ADDR/estimate?tenant=acme&table=census&q=age+%3D+3"
curl -s "http://$ADDR/estimate?tenant=globex&table=dmv&q=state+%3D+3" | grep '"bundle"'

say "routed globex/dmv answers are bit-identical to the default bundle"
IV_DEFAULT="$(curl -fsS "http://$ADDR/estimate?q=state+%3D+3" | grep -E '"(interval_|estimate_)')"
IV_ROUTED="$(curl -fsS "http://$ADDR/estimate?tenant=globex&table=dmv&q=state+%3D+3" | grep -E '"(interval_|estimate_)')"
if [ "$IV_ROUTED" != "$IV_DEFAULT" ]; then
  echo "registry-demo: routed interval disagrees with the default bundle" >&2
  printf 'routed:\n%s\ndefault:\n%s\n' "$IV_ROUTED" "$IV_DEFAULT" >&2
  exit 1
fi
printf '%s\n' "$IV_ROUTED"

say "roll out acme/census v2 (same recipe, so the smoke check passes)..."
curl -s -X POST "http://$ADDR/admin/register" \
  -d "{\"tenant\": \"acme\", \"table\": \"census\", \"artifact\": \"$WORK/census-v2.cpi\"}" >/dev/null
curl -s -X POST "http://$ADDR/admin/promote" \
  -d '{"tenant": "acme", "table": "census", "version": 2}'

say "...then change your mind: rollback is O(1)"
curl -s -X POST "http://$ADDR/admin/rollback" \
  -d '{"tenant": "acme", "table": "census"}'

say "the whole registry, including cache residency"
curl -s "http://$ADDR/admin/registry"

say "registry metrics"
curl -s "http://$ADDR/metrics" | grep '^cardpi_registry_'

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
say "registry-demo: OK"
