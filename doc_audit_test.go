package cardpi

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestPublicSurfaceIsDocumented enforces the godoc contract on the packages
// that form the library's public surface: the root cardpi package and
// internal/conformal (the algorithmic core users read when auditing the
// guarantees). Every exported type, function, method, and struct field must
// carry a doc comment; CI fails on new undocumented exports. The content
// convention — state the units (normalised selectivity vs. cardinality/rows)
// and the concurrency contract — is reviewed by humans, but presence is
// enforced here.
func TestPublicSurfaceIsDocumented(t *testing.T) {
	for dir, importPath := range map[string]string{
		".":                  "cardpi",
		"internal/conformal": "cardpi/internal/conformal",
		"internal/registry":  "cardpi/internal/registry",
		"internal/pipeline":  "cardpi/internal/pipeline",
		"internal/recal":     "cardpi/internal/recal",
		"internal/cache":     "cardpi/internal/cache",
		"internal/scenario":  "cardpi/internal/scenario",
		"internal/synth":     "cardpi/internal/synth",
	} {
		missing, err := undocumentedExports(dir, importPath)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, m := range missing {
			t.Errorf("%s: %s is exported but has no doc comment", importPath, m)
		}
	}
}

// TestOperationsDocCoversRegistrySurface keeps OPERATIONS.md and
// OBSERVABILITY.md one-for-one with the registry implementation: every
// /admin endpoint path registered in the serve mux and every
// cardpi_registry_* metric family created in code must appear in both
// documents. Adding an endpoint or metric without documenting it fails CI.
func TestOperationsDocCoversRegistrySurface(t *testing.T) {
	endpoints := sourceMatches(t, regexp.MustCompile(`/admin/[a-z]+`), "cmd/cardpi")
	metrics := sourceMatches(t, regexp.MustCompile(`cardpi_registry_[a-z_]+`), "internal/registry", "cmd/cardpi")
	if len(endpoints) == 0 || len(metrics) == 0 {
		t.Fatalf("surface scan found %d endpoints and %d metric families — the scanner is broken",
			len(endpoints), len(metrics))
	}

	operations := readDoc(t, "OPERATIONS.md")
	observability := readDoc(t, "OBSERVABILITY.md")
	for _, ep := range endpoints {
		if !strings.Contains(operations, ep) {
			t.Errorf("OPERATIONS.md does not document admin endpoint %s", ep)
		}
	}
	for _, m := range metrics {
		if !strings.Contains(operations, m) {
			t.Errorf("OPERATIONS.md does not mention registry metric %s", m)
		}
		if !strings.Contains(observability, m) {
			t.Errorf("OBSERVABILITY.md does not document registry metric %s", m)
		}
	}
}

// TestObservabilityDocCoversRecalSurface does the same for the closed-loop
// recalibration supervisor: every cardpi_recal_* metric family created in
// code must appear in OBSERVABILITY.md.
func TestObservabilityDocCoversRecalSurface(t *testing.T) {
	metrics := sourceMatches(t, regexp.MustCompile(`cardpi_recal_[a-z_]+`), "internal/recal", "cmd/cardpi")
	if len(metrics) == 0 {
		t.Fatal("surface scan found no cardpi_recal_* families — the scanner is broken")
	}
	observability := readDoc(t, "OBSERVABILITY.md")
	for _, m := range metrics {
		if !strings.Contains(observability, m) {
			t.Errorf("OBSERVABILITY.md does not document recalibration metric %s", m)
		}
	}
}

// TestObservabilityDocCoversSynthSurface does the same for the estimator
// synthesis meta-search: every cardpi_synth_* metric family created in code
// must appear in OBSERVABILITY.md.
func TestObservabilityDocCoversSynthSurface(t *testing.T) {
	metrics := sourceMatches(t, regexp.MustCompile(`cardpi_synth_[a-z_]+`), "internal/synth", "cmd/cardpi")
	if len(metrics) == 0 {
		t.Fatal("surface scan found no cardpi_synth_* families — the scanner is broken")
	}
	observability := readDoc(t, "OBSERVABILITY.md")
	for _, m := range metrics {
		if !strings.Contains(observability, m) {
			t.Errorf("OBSERVABILITY.md does not document synthesis metric %s", m)
		}
	}
}

// TestObservabilityDocCoversCacheSurface does the same for the serving-layer
// interval cache: every cardpi_cache_* metric family created in code must
// appear in OBSERVABILITY.md.
func TestObservabilityDocCoversCacheSurface(t *testing.T) {
	metrics := sourceMatches(t, regexp.MustCompile(`cardpi_cache_[a-z_]+`), "internal/cache", "cmd/cardpi")
	if len(metrics) == 0 {
		t.Fatal("surface scan found no cardpi_cache_* families — the scanner is broken")
	}
	observability := readDoc(t, "OBSERVABILITY.md")
	for _, m := range metrics {
		if !strings.Contains(observability, m) {
			t.Errorf("OBSERVABILITY.md does not document cache metric %s", m)
		}
	}
}

// sourceMatches collects the sorted, deduplicated matches of re across the
// non-test Go files of the given directories.
func sourceMatches(t *testing.T, re *regexp.Regexp, dirs ...string) []string {
	t.Helper()
	seen := map[string]bool{}
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range re.FindAllString(string(src), -1) {
				seen[m] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// readDoc loads a repo-root markdown document.
func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// undocumentedExports parses the package in dir (tests excluded) and
// returns the exported declarations lacking a doc comment.
func undocumentedExports(dir, importPath string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, pkg := range pkgs {
		d := doc.New(pkg, importPath, 0)
		if strings.TrimSpace(d.Doc) == "" {
			missing = append(missing, "package "+d.Name)
		}
		for _, f := range d.Funcs {
			if strings.TrimSpace(f.Doc) == "" {
				missing = append(missing, "func "+f.Name)
			}
		}
		for _, v := range append(append([]*doc.Value(nil), d.Consts...), d.Vars...) {
			if strings.TrimSpace(v.Doc) == "" {
				missing = append(missing, "const/var group "+strings.Join(v.Names, ","))
			}
		}
		for _, typ := range d.Types {
			if strings.TrimSpace(typ.Doc) == "" {
				missing = append(missing, "type "+typ.Name)
			}
			for _, f := range typ.Funcs {
				if strings.TrimSpace(f.Doc) == "" {
					missing = append(missing, "func "+f.Name)
				}
			}
			for _, m := range typ.Methods {
				if strings.TrimSpace(m.Doc) == "" {
					missing = append(missing, fmt.Sprintf("method (%s).%s", typ.Name, m.Name))
				}
			}
			for _, v := range append(append([]*doc.Value(nil), typ.Consts...), typ.Vars...) {
				if strings.TrimSpace(v.Doc) == "" {
					missing = append(missing, "const/var group "+strings.Join(v.Names, ","))
				}
			}
			missing = append(missing, undocumentedFields(typ)...)
		}
	}
	return missing, nil
}

// undocumentedFields reports exported struct fields of an exported type
// that carry neither a doc comment nor a trailing line comment.
func undocumentedFields(typ *doc.Type) []string {
	var missing []string
	for _, spec := range typ.Decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if field.Doc.Text() != "" || field.Comment.Text() != "" {
				continue
			}
			for _, name := range field.Names {
				if name.IsExported() {
					missing = append(missing, fmt.Sprintf("field %s.%s", typ.Name, name.Name))
				}
			}
			// Exported embedded fields without names.
			if len(field.Names) == 0 {
				if id := embeddedName(field.Type); id != "" && ast.IsExported(id) {
					missing = append(missing, fmt.Sprintf("embedded field %s.%s", typ.Name, id))
				}
			}
		}
	}
	return missing
}

func embeddedName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
