package cardpi

import (
	"math"
	"sync"
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/faultinject"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

func TestAdaptiveCoverageOnStream(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal.Subset(50), conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive/histogram" {
		t.Fatalf("name = %s", a.Name())
	}
	hits := 0
	for _, lq := range test.Queries {
		iv, err := a.Interval(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(lq.Sel) {
			hits++
		}
		a.Observe(lq.Query, lq.Sel)
	}
	cov := float64(hits) / float64(len(test.Queries))
	if cov < 0.84 {
		t.Fatalf("adaptive coverage %v < 0.84", cov)
	}
	if a.CalibrationSize() != 50+len(test.Queries) {
		t.Fatalf("calibration size %d", a.CalibrationSize())
	}
	if a.Drifted() {
		t.Fatalf("drift alarm on exchangeable stream (stat %v)", a.DriftStatistic())
	}
}

func TestAdaptiveDetectsDrift(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 2, Significance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate data drift: the underlying table changed after the model's
	// statistics were built, so observed true selectivities diverge wildly
	// from what the model predicts.
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := workload.Generate(tab, workload.Config{Count: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range shifted.Queries {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("drift not detected; stat %v", a.DriftStatistic())
	}
}

func TestAdaptiveWindow(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Window: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CalibrationSize() != 64 {
		t.Fatalf("windowed calibration size %d, want 64", a.CalibrationSize())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	if _, err := NewAdaptive(model, cal, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0}); err == nil {
		t.Fatal("alpha=0 should fail")
	}
	if _, err := NewAdaptive(model, nil, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0.1}); err == nil {
		t.Fatal("empty initial calibration should fail")
	}
}

func TestCardinalityInterval(t *testing.T) {
	iv := CardinalityInterval(Interval{Lo: 0.1, Hi: 0.3}, 1000)
	if iv.Lo != 100 || iv.Hi != 300 {
		t.Fatalf("interval = %+v", iv)
	}
	clipped := CardinalityInterval(Interval{Lo: -0.5, Hi: 2}, 1000)
	if clipped.Lo != 0 || clipped.Hi != 1000 {
		t.Fatalf("clipped = %+v", clipped)
	}
}

// TestAdaptiveDriftAlarmEdgeTriggered drives the drift monitor with a
// deterministic stale-calibration fault (the model's predictions shift by a
// constant bias mid-stream) and pins the alarm contract: the alarm counter
// increments exactly once per drift episode no matter how long the drift
// persists, Recalibrate resets the monitor and the latch, and a later,
// distinct episode fires the alarm again.
func TestAdaptiveDriftAlarmEdgeTriggered(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	// Faults start only after NewAdaptive's seeding pass (one
	// EstimateSelectivity call per calibration query), so calibration is
	// clean and the live stream is stale — the drift scenario.
	plan := faultinject.MustPlan(faultinject.Spec{
		Seed: 7, Stale: 1, Bias: 0.4, After: uint64(len(cal.Queries)),
	})
	faulty := faultinject.WrapEstimator(model, plan)
	reg := obs.NewRegistry()
	a, err := NewAdaptive(faulty, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 5, Significance: 0.01, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	alarms := reg.Counter("cardpi_adaptive_drift_alarms_total", "", obs.L("model", faulty.Name()))
	recals := reg.Counter("cardpi_adaptive_recalibrations_total", "", obs.L("model", faulty.Name()))
	if alarms.Value() != 0 {
		t.Fatalf("alarm fired during clean seeding: %d", alarms.Value())
	}

	// Episode 1: the stale model serves biased predictions against honest
	// truths. The alarm must fire — and fire exactly once, even though the
	// drift persists for the whole phase.
	phase1 := test.Queries[:200]
	for _, lq := range phase1 {
		a.Observe(lq.Query, lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("stale-calibration fault not detected; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 1 {
		t.Fatalf("alarm counter = %d after a single persistent drift episode, want 1", got)
	}
	if plan.Injected(faultinject.Stale) == 0 {
		t.Fatal("fault plan never injected a stale estimate")
	}

	// Recalibrate against the (still biased) model: scores become
	// exchangeable again, the monitor and latch reset, the alarm stays at 1.
	if err := a.Recalibrate(cal); err != nil {
		t.Fatal(err)
	}
	if a.Drifted() {
		t.Fatal("monitor still alarmed after Recalibrate")
	}
	if got := recals.Value(); got != 1 {
		t.Fatalf("recalibration counter = %d, want 1", got)
	}
	for _, lq := range test.Queries[200:260] {
		a.Observe(lq.Query, lq.Sel)
	}
	if a.Drifted() {
		t.Fatalf("false alarm on a consistent post-recalibration stream; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 1 {
		t.Fatalf("alarm counter = %d on a quiet stream, want still 1", got)
	}

	// Episode 2: a genuinely new drift (inverted truths) re-arms the edge
	// trigger — the counter moves to exactly 2.
	for _, lq := range test.Queries[260:] {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("second drift episode not detected; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 2 {
		t.Fatalf("alarm counter = %d after a second episode, want 2", got)
	}
}

// TestAdaptiveRecalibrateFailureKeepsState pins the validate-before-mutate
// contract: a recalibration whose workload yields an empty calibration set
// must error with the alarm latched, the martingale untouched, the
// calibration scores intact, and the recalibration counter unmoved — a failed
// recalibration can never disarm a live drift alarm.
func TestAdaptiveRecalibrateFailureKeepsState(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	reg := obs.NewRegistry()
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 6, Significance: 0.01, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range test.Queries[:200] {
		a.Observe(lq.Query, 1-lq.Sel) // inverted truths: certain drift
	}
	if !a.Drifted() {
		t.Fatalf("drift not detected; stat %v", a.DriftStatistic())
	}
	sizeBefore := a.CalibrationSize()
	statBefore := a.DriftStatistic()

	// Every query in this workload is dropped (non-finite truth), so the
	// rebuilt calibration set is empty and the recalibration must refuse.
	poisoned := &workload.Workload{NormN: cal.NormN}
	for _, lq := range cal.Queries[:20] {
		poisoned.Queries = append(poisoned.Queries,
			workload.Labeled{Query: lq.Query, Sel: math.NaN(), Norm: lq.Norm})
	}
	if err := a.Recalibrate(poisoned); err == nil {
		t.Fatal("Recalibrate accepted a workload yielding an empty calibration set")
	}
	if !a.Drifted() {
		t.Fatal("failed recalibration disarmed the drift alarm")
	}
	if got := a.CalibrationSize(); got != sizeBefore {
		t.Errorf("failed recalibration changed calibration size %d -> %d", sizeBefore, got)
	}
	if got := a.DriftStatistic(); got != statBefore {
		t.Errorf("failed recalibration moved the drift statistic %v -> %v", statBefore, got)
	}
	recals := reg.Counter("cardpi_adaptive_recalibrations_total", "", obs.L("model", model.Name()))
	if got := recals.Value(); got != 0 {
		t.Errorf("recalibration counter = %d after a failed recalibration, want 0", got)
	}
}

// TestAdaptiveRecalibrateResetsTelemetryRings pins the ring-reset semantics:
// after a successful recalibration the rolling coverage reads NaN (no blended
// pre-drift samples) until fresh traffic refills the window.
func TestAdaptiveRecalibrateResetsTelemetryRings(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range test.Queries[:100] {
		a.Observe(lq.Query, lq.Sel)
	}
	if math.IsNaN(a.RollingCoverage()) {
		t.Fatal("rolling coverage empty after 100 observations")
	}
	if err := a.Recalibrate(cal); err != nil {
		t.Fatal(err)
	}
	if got := a.RollingCoverage(); !math.IsNaN(got) {
		t.Fatalf("rolling coverage = %v immediately after recalibration, want NaN (reset rings)", got)
	}
	a.Observe(test.Queries[100].Query, test.Queries[100].Sel)
	if math.IsNaN(a.RollingCoverage()) {
		t.Fatal("rolling coverage still NaN after post-recalibration traffic")
	}
}

// TestAdaptiveOnRecalibrateHook: the hook fires exactly once per committed
// recalibration, outside the internal lock (the hook body re-enters the
// wrapper), and never on a failed recalibration.
func TestAdaptiveOnRecalibrateHook(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	a.OnRecalibrate(func() {
		fired++
		a.CalibrationSize() // must not deadlock: hook runs outside the lock
	})
	if err := a.Recalibrate(cal); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times after one recalibration, want 1", fired)
	}
	poisoned := &workload.Workload{NormN: cal.NormN}
	for _, lq := range cal.Queries[:10] {
		poisoned.Queries = append(poisoned.Queries,
			workload.Labeled{Query: lq.Query, Sel: math.NaN(), Norm: lq.Norm})
	}
	if err := a.Recalibrate(poisoned); err == nil {
		t.Fatal("poisoned recalibration unexpectedly succeeded")
	}
	if fired != 1 {
		t.Fatalf("hook fired on a failed recalibration (count %d)", fired)
	}
}

// TestAdaptiveRecalibrateModel pins the model-swap commit path used by the
// recalibration supervisor: both arguments are required, and a successful
// swap changes the served estimates, the wrapper's name, and the calibration
// scores together.
func TestAdaptiveRecalibrateModel(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	replacement := estimator.Func{N: "replacement", F: func(q workload.Query) float64 {
		return 0.5 * model.EstimateSelectivity(q)
	}}
	if err := a.RecalibrateModel(nil, cal); err == nil {
		t.Error("RecalibrateModel accepted a nil model")
	}
	if err := a.RecalibrateModel(replacement, nil); err == nil {
		t.Error("RecalibrateModel accepted a nil workload")
	}
	if a.Name() != "adaptive/histogram" {
		t.Fatalf("rejected swaps changed the name to %s", a.Name())
	}
	if err := a.RecalibrateModel(replacement, cal); err != nil {
		t.Fatal(err)
	}
	if got := a.Name(); got != "adaptive/replacement" {
		t.Errorf("name after swap = %q, want adaptive/replacement", got)
	}
	if got := a.CalibrationSize(); got != len(cal.Queries) {
		t.Errorf("calibration size after swap = %d, want %d", got, len(cal.Queries))
	}
	iv, err := a.Interval(test.Queries[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.Hi) {
		t.Errorf("post-swap interval [%v, %v] invalid", iv.Lo, iv.Hi)
	}
}

// TestAdaptiveRecalibrateRace exercises the swap path under the race
// detector: serving traffic (Interval/Observe/Drifted/Name) races repeated
// Recalibrate and RecalibrateModel calls, and every served interval must stay
// finite, ordered, and inside [0, 1].
func TestAdaptiveRecalibrateRace(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	replacement := estimator.Func{N: "replacement", F: func(q workload.Query) float64 {
		return 0.5 * model.EstimateSelectivity(q)
	}}
	var wg sync.WaitGroup
	errCh := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lq := test.Queries[(w*200+i)%len(test.Queries)]
				iv, err := a.Interval(lq.Query)
				if err != nil {
					select {
					case errCh <- "Interval: " + err.Error():
					default:
					}
					return
				}
				if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
					select {
					case errCh <- "invalid interval under concurrent recalibration":
					default:
					}
					return
				}
				a.Observe(lq.Query, lq.Sel)
				_ = a.Drifted()
				_ = a.Name()
				_ = a.RollingCoverage()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				if err := a.Recalibrate(cal); err != nil {
					select {
					case errCh <- "Recalibrate: " + err.Error():
					default:
					}
					return
				}
			} else {
				if err := a.RecalibrateModel(replacement, cal); err != nil {
					select {
					case errCh <- "RecalibrateModel: " + err.Error():
					default:
					}
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
}
