package cardpi

import (
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/faultinject"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

func TestAdaptiveCoverageOnStream(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal.Subset(50), conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive/histogram" {
		t.Fatalf("name = %s", a.Name())
	}
	hits := 0
	for _, lq := range test.Queries {
		iv, err := a.Interval(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(lq.Sel) {
			hits++
		}
		a.Observe(lq.Query, lq.Sel)
	}
	cov := float64(hits) / float64(len(test.Queries))
	if cov < 0.84 {
		t.Fatalf("adaptive coverage %v < 0.84", cov)
	}
	if a.CalibrationSize() != 50+len(test.Queries) {
		t.Fatalf("calibration size %d", a.CalibrationSize())
	}
	if a.Drifted() {
		t.Fatalf("drift alarm on exchangeable stream (stat %v)", a.DriftStatistic())
	}
}

func TestAdaptiveDetectsDrift(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 2, Significance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate data drift: the underlying table changed after the model's
	// statistics were built, so observed true selectivities diverge wildly
	// from what the model predicts.
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := workload.Generate(tab, workload.Config{Count: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range shifted.Queries {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("drift not detected; stat %v", a.DriftStatistic())
	}
}

func TestAdaptiveWindow(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Window: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CalibrationSize() != 64 {
		t.Fatalf("windowed calibration size %d, want 64", a.CalibrationSize())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	if _, err := NewAdaptive(model, cal, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0}); err == nil {
		t.Fatal("alpha=0 should fail")
	}
	if _, err := NewAdaptive(model, nil, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0.1}); err == nil {
		t.Fatal("empty initial calibration should fail")
	}
}

func TestCardinalityInterval(t *testing.T) {
	iv := CardinalityInterval(Interval{Lo: 0.1, Hi: 0.3}, 1000)
	if iv.Lo != 100 || iv.Hi != 300 {
		t.Fatalf("interval = %+v", iv)
	}
	clipped := CardinalityInterval(Interval{Lo: -0.5, Hi: 2}, 1000)
	if clipped.Lo != 0 || clipped.Hi != 1000 {
		t.Fatalf("clipped = %+v", clipped)
	}
}

// TestAdaptiveDriftAlarmEdgeTriggered drives the drift monitor with a
// deterministic stale-calibration fault (the model's predictions shift by a
// constant bias mid-stream) and pins the alarm contract: the alarm counter
// increments exactly once per drift episode no matter how long the drift
// persists, Recalibrate resets the monitor and the latch, and a later,
// distinct episode fires the alarm again.
func TestAdaptiveDriftAlarmEdgeTriggered(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	// Faults start only after NewAdaptive's seeding pass (one
	// EstimateSelectivity call per calibration query), so calibration is
	// clean and the live stream is stale — the drift scenario.
	plan := faultinject.MustPlan(faultinject.Spec{
		Seed: 7, Stale: 1, Bias: 0.4, After: uint64(len(cal.Queries)),
	})
	faulty := faultinject.WrapEstimator(model, plan)
	reg := obs.NewRegistry()
	a, err := NewAdaptive(faulty, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 5, Significance: 0.01, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	alarms := reg.Counter("cardpi_adaptive_drift_alarms_total", "", obs.L("model", faulty.Name()))
	recals := reg.Counter("cardpi_adaptive_recalibrations_total", "", obs.L("model", faulty.Name()))
	if alarms.Value() != 0 {
		t.Fatalf("alarm fired during clean seeding: %d", alarms.Value())
	}

	// Episode 1: the stale model serves biased predictions against honest
	// truths. The alarm must fire — and fire exactly once, even though the
	// drift persists for the whole phase.
	phase1 := test.Queries[:200]
	for _, lq := range phase1 {
		a.Observe(lq.Query, lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("stale-calibration fault not detected; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 1 {
		t.Fatalf("alarm counter = %d after a single persistent drift episode, want 1", got)
	}
	if plan.Injected(faultinject.Stale) == 0 {
		t.Fatal("fault plan never injected a stale estimate")
	}

	// Recalibrate against the (still biased) model: scores become
	// exchangeable again, the monitor and latch reset, the alarm stays at 1.
	if err := a.Recalibrate(cal); err != nil {
		t.Fatal(err)
	}
	if a.Drifted() {
		t.Fatal("monitor still alarmed after Recalibrate")
	}
	if got := recals.Value(); got != 1 {
		t.Fatalf("recalibration counter = %d, want 1", got)
	}
	for _, lq := range test.Queries[200:260] {
		a.Observe(lq.Query, lq.Sel)
	}
	if a.Drifted() {
		t.Fatalf("false alarm on a consistent post-recalibration stream; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 1 {
		t.Fatalf("alarm counter = %d on a quiet stream, want still 1", got)
	}

	// Episode 2: a genuinely new drift (inverted truths) re-arms the edge
	// trigger — the counter moves to exactly 2.
	for _, lq := range test.Queries[260:] {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("second drift episode not detected; stat %v", a.DriftStatistic())
	}
	if got := alarms.Value(); got != 2 {
		t.Fatalf("alarm counter = %d after a second episode, want 2", got)
	}
}
