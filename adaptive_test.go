package cardpi

import (
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/workload"
)

func TestAdaptiveCoverageOnStream(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	a, err := NewAdaptive(model, cal.Subset(50), conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive/histogram" {
		t.Fatalf("name = %s", a.Name())
	}
	hits := 0
	for _, lq := range test.Queries {
		iv, err := a.Interval(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(lq.Sel) {
			hits++
		}
		a.Observe(lq.Query, lq.Sel)
	}
	cov := float64(hits) / float64(len(test.Queries))
	if cov < 0.84 {
		t.Fatalf("adaptive coverage %v < 0.84", cov)
	}
	if a.CalibrationSize() != 50+len(test.Queries) {
		t.Fatalf("calibration size %d", a.CalibrationSize())
	}
	if a.Drifted() {
		t.Fatalf("drift alarm on exchangeable stream (stat %v)", a.DriftStatistic())
	}
}

func TestAdaptiveDetectsDrift(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 2, Significance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate data drift: the underlying table changed after the model's
	// statistics were built, so observed true selectivities diverge wildly
	// from what the model predicts.
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := workload.Generate(tab, workload.Config{Count: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range shifted.Queries {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("drift not detected; stat %v", a.DriftStatistic())
	}
}

func TestAdaptiveWindow(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Window: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CalibrationSize() != 64 {
		t.Fatalf("windowed calibration size %d, want 64", a.CalibrationSize())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	if _, err := NewAdaptive(model, cal, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0}); err == nil {
		t.Fatal("alpha=0 should fail")
	}
	if _, err := NewAdaptive(model, nil, conformal.ResidualScore{}, AdaptiveConfig{Alpha: 0.1}); err == nil {
		t.Fatal("empty initial calibration should fail")
	}
}

func TestCardinalityInterval(t *testing.T) {
	iv := CardinalityInterval(Interval{Lo: 0.1, Hi: 0.3}, 1000)
	if iv.Lo != 100 || iv.Hi != 300 {
		t.Fatalf("interval = %+v", iv)
	}
	clipped := CardinalityInterval(Interval{Lo: -0.5, Hi: 2}, 1000)
	if clipped.Lo != 0 || clipped.Hi != 1000 {
		t.Fatalf("clipped = %+v", clipped)
	}
}
