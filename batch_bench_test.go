package cardpi

// Benchmarks for the batched inference hot path (BENCH_pi.json via
// `make bench-json`): per-query sequential Interval against IntervalBatch at
// two batch sizes, for the two wrappers the batch work targets most —
// localized CP (whose per-query full calibration sort becomes a sublinear
// neighbour-index lookup) and split CP over the MSCN network (whose
// per-query forward passes become pooled matrix passes). Every benchmark
// reports a shared ns/query metric so cmd/benchjson can derive
// queries-per-second speedups across different batch sizes.

import (
	"fmt"
	"sync"
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/histogram"
	"cardpi/internal/mscn"
	"cardpi/internal/workload"
)

// benchPIState is built once and shared by every PI benchmark: a DMV table
// large enough that the localized method's calibration set (~1.1k queries)
// shows the sort-per-query cost, and an MSCN model trained just far enough
// to be a realistic network workload.
type benchPIState struct {
	once sync.Once
	err  error
	pis  []struct {
		name string
		pi   BatchPI
	}
	qs []workload.Query
}

var benchPI benchPIState

func (s *benchPIState) get(b *testing.B) ([]struct {
	name string
	pi   BatchPI
}, []workload.Query) {
	b.Helper()
	s.once.Do(func() { s.err = s.build() })
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.pis, s.qs
}

func (s *benchPIState) build() error {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 4000, Seed: 1})
	if err != nil {
		return err
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 3600, Seed: 2})
	if err != nil {
		return err
	}
	parts, err := wl.Split(3, 0.4, 0.3, 0.3)
	if err != nil {
		return err
	}
	train, cal, test := parts[0], parts[1], parts[2]

	hist := histogram.NewSingle(tab, histogram.Config{})
	feat := estimator.NewFeaturizer(tab)
	ff := func(q workload.Query) []float64 { return feat.Featurize(q) }
	lcp, err := WrapLocalized(hist, cal, ff, conformal.ResidualScore{}, 0.1, 50)
	if err != nil {
		return err
	}
	// The pipeline wires the append-style featurizer on every localized
	// wrapper it builds; the benchmark measures the same production path.
	lcp.SetAppendFeatures(feat.AppendFeaturize)

	m, err := mscn.Train(mscn.NewSingleFeaturizer(tab), train, mscn.Config{Epochs: 2, Seed: 7})
	if err != nil {
		return err
	}
	mscnSCP, err := WrapSplitCP(m, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		return err
	}

	s.pis = []struct {
		name string
		pi   BatchPI
	}{
		{"lcp", lcp},
		{"mscn-s-cp", mscnSCP},
	}
	s.qs = make([]workload.Query, len(test.Queries))
	for i, lq := range test.Queries {
		s.qs[i] = lq.Query
	}
	if len(s.qs) < 1024 {
		return fmt.Errorf("bench workload too small: %d test queries", len(s.qs))
	}
	return nil
}

// BenchmarkInterval is the sequential baseline: one scalar Interval call per
// op, rotating through the test workload.
func BenchmarkInterval(b *testing.B) {
	pis, qs := benchPI.get(b)
	for _, entry := range pis {
		b.Run(entry.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := entry.pi.Interval(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/query")
		})
	}
}

// BenchmarkIntervalBatch answers the same workload through the batch path at
// two batch sizes; ns/query divides the whole-batch latency by the batch
// size so the speedup over BenchmarkInterval reads off directly.
func BenchmarkIntervalBatch(b *testing.B) {
	pis, qs := benchPI.get(b)
	for _, entry := range pis {
		for _, n := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/n=%d", entry.name, n), func(b *testing.B) {
				batch := qs[:n]
				// Warm pooled scratch so steady-state cost is measured.
				if _, err := entry.pi.IntervalBatch(batch); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := entry.pi.IntervalBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/query")
			})
		}
	}
}
