package cardpi_test

import (
	"fmt"
	"log"

	"cardpi"
	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/histogram"
	"cardpi/internal/workload"
)

// examplePipeline builds a small deterministic dataset, a traditional
// estimator and a calibration/test split shared by the examples.
func examplePipeline() (cardpi.Estimator, *workload.Workload, *workload.Workload) {
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 4000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 800, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := wl.Split(9, 0.5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	return histogram.NewSingle(tab, histogram.Config{}), parts[0], parts[1]
}

// ExampleWrapSplitCP calibrates split conformal prediction around a
// black-box estimator and checks empirical coverage at the 0.9 target.
func ExampleWrapSplitCP() {
	model, cal, test := examplePipeline()
	pi, err := cardpi.WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := cardpi.Evaluate(pi, test)
	if err != nil {
		log.Fatal(err)
	}
	// Unclipped S-CP intervals all have width 2*delta; clipping to [0,1]
	// can only shrink them.
	fmt.Printf("method=%s covered=%v maxWidthIs2Delta=%v\n",
		pi.Name(), ev.Coverage >= 0.85, ev.Widths.Max <= 2*pi.Delta()+1e-12)
	// Output: method=s-cp/histogram covered=true maxWidthIs2Delta=true
}

// ExampleWrapMondrian groups calibration by predicate count, giving each
// group its own threshold.
func ExampleWrapMondrian() {
	model, cal, test := examplePipeline()
	byPreds := func(q workload.Query) string { return fmt.Sprint(len(q.Preds), "-preds") }
	pi, err := cardpi.WrapMondrian(model, cal, byPreds, conformal.ResidualScore{}, 0.1, 10)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := cardpi.Evaluate(pi, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method=%s covered=%v adaptive=%v\n",
		pi.Name(), ev.Coverage >= 0.85, ev.Widths.P90 > ev.Widths.Median)
	// Output: method=mondrian/histogram covered=true adaptive=true
}

// ExampleCardinalityInterval converts a selectivity interval to cardinality
// units for a 10k-row table.
func ExampleCardinalityInterval() {
	iv := cardpi.CardinalityInterval(cardpi.Interval{Lo: 0.01, Hi: 0.03}, 10000)
	fmt.Printf("[%.0f, %.0f]\n", iv.Lo, iv.Hi)
	// Output: [100, 300]
}
