module cardpi

go 1.22
