package cardpi

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cardpi/internal/conformal"
	"cardpi/internal/faultinject"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// scriptedPI fails (or panics, or emits a fixed interval) on demand — the
// controllable primary for breaker and sanitization tests.
type scriptedPI struct {
	iv    Interval
	fail  bool
	panic bool
}

func (s *scriptedPI) Name() string { return "scripted/unit" }
func (s *scriptedPI) Interval(workload.Query) (Interval, error) {
	if s.panic {
		panic("scripted panic")
	}
	if s.fail {
		return Interval{}, errors.New("scripted failure")
	}
	return s.iv, nil
}

func mustResilient(t *testing.T, primary PI, cfg ResilientConfig) *Resilient {
	t.Helper()
	r, err := NewResilient(primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResilientHealthyPassthrough(t *testing.T) {
	want := Interval{Lo: 0.2, Hi: 0.4}
	r := mustResilient(t, &scriptedPI{iv: want}, ResilientConfig{})
	if r.Name() != "resilient/scripted/unit" {
		t.Fatalf("name = %q", r.Name())
	}
	iv, depth := r.IntervalDepthCtx(context.Background(), workload.Query{})
	if iv != want || depth != 0 {
		t.Fatalf("iv = %+v depth = %d, want primary passthrough", iv, depth)
	}
	if _, err := r.Interval(workload.Query{}); err != nil {
		t.Fatalf("Interval err = %v", err)
	}
}

func TestResilientFallbackOnErrorPanicAndNaN(t *testing.T) {
	fb := &scriptedPI{iv: Interval{Lo: 0.1, Hi: 0.6}}
	for _, tc := range []struct {
		name    string
		primary *scriptedPI
	}{
		{"error", &scriptedPI{fail: true}},
		{"panic", &scriptedPI{panic: true}},
		{"nan", &scriptedPI{iv: Interval{Lo: math.NaN(), Hi: math.NaN()}}},
		{"inf", &scriptedPI{iv: Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			r := mustResilient(t, tc.primary, ResilientConfig{Fallbacks: []PI{fb}, Metrics: reg})
			iv, depth := r.IntervalDepthCtx(context.Background(), workload.Query{})
			if depth != 1 || iv != fb.iv {
				t.Fatalf("iv = %+v depth = %d, want fallback answer", iv, depth)
			}
		})
	}
}

func TestResilientFailsafeWhenEverythingFails(t *testing.T) {
	r := mustResilient(t, &scriptedPI{fail: true},
		ResilientConfig{Fallbacks: []PI{&scriptedPI{panic: true}}})
	iv, depth := r.IntervalDepthCtx(context.Background(), workload.Query{})
	if depth != r.FailsafeDepth() {
		t.Fatalf("depth = %d, want failsafe %d", depth, r.FailsafeDepth())
	}
	if iv != (Interval{Lo: 0, Hi: 1}) {
		t.Fatalf("failsafe interval = %+v, want [0, 1]", iv)
	}
}

func TestResilientNormalizesInvertedBounds(t *testing.T) {
	r := mustResilient(t, &scriptedPI{iv: Interval{Lo: 0.8, Hi: 0.2}}, ResilientConfig{})
	iv, depth := r.IntervalDepthCtx(context.Background(), workload.Query{})
	if depth != 0 || iv.Lo != 0.2 || iv.Hi != 0.8 {
		t.Fatalf("iv = %+v depth = %d, want swapped primary bounds", iv, depth)
	}
}

func TestResilientDeadlineShortCircuitsToFailsafe(t *testing.T) {
	primary := &scriptedPI{iv: Interval{Lo: 0.2, Hi: 0.4}}
	r := mustResilient(t, primary, ResilientConfig{Fallbacks: []PI{&scriptedPI{iv: Interval{Lo: 0, Hi: 0.5}}}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	iv, depth := r.IntervalDepthCtx(ctx, workload.Query{})
	if depth != r.FailsafeDepth() || iv != (Interval{Lo: 0, Hi: 1}) {
		t.Fatalf("iv = %+v depth = %d, want immediate failsafe on dead context", iv, depth)
	}
	if r.BreakerState() != BreakerClosed {
		t.Fatal("a dead context before any attempt must not count against the breaker")
	}
	if iv, err := r.IntervalCtx(ctx, workload.Query{}); err != nil || iv != (Interval{Lo: 0, Hi: 1}) {
		t.Fatalf("IntervalCtx on dead context = %+v, %v; want failsafe, nil", iv, err)
	}
}

func TestResilientBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	primary := &scriptedPI{iv: Interval{Lo: 0.3, Hi: 0.5}, fail: true}
	fb := &scriptedPI{iv: Interval{Lo: 0.1, Hi: 0.7}}
	reg := obs.NewRegistry()
	r := mustResilient(t, primary, ResilientConfig{
		Fallbacks:        []PI{fb},
		FailureThreshold: 3,
		OpenFor:          10 * time.Second,
		Metrics:          reg,
		Clock:            clock,
	})
	q := workload.Query{}

	// Three consecutive failures trip the breaker open.
	for i := 0; i < 3; i++ {
		if r.BreakerState() != BreakerClosed {
			t.Fatalf("breaker opened after only %d failures", i)
		}
		if _, depth := r.IntervalDepthCtx(context.Background(), q); depth != 1 {
			t.Fatalf("failing primary should fall back, got depth %d", depth)
		}
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", r.BreakerState())
	}

	// While open, the primary is skipped entirely (it would succeed now).
	primary.fail = false
	calls := reg.Counter("cardpi_resilient_breaker_skips_total", "", obs.L("pi", r.Name()))
	before := calls.Value()
	if _, depth := r.IntervalDepthCtx(context.Background(), q); depth != 1 {
		t.Fatalf("open breaker should serve from fallback, got depth %d", depth)
	}
	if calls.Value() != before+1 {
		t.Fatal("open breaker did not record a skip")
	}

	// After the cool-down, a half-open probe reaches the (now healthy)
	// primary and closes the breaker.
	now = now.Add(11 * time.Second)
	if _, depth := r.IntervalDepthCtx(context.Background(), q); depth != 0 {
		t.Fatalf("half-open probe should reach the primary, got depth %d", depth)
	}
	if r.BreakerState() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", r.BreakerState())
	}

	// A failing half-open probe re-opens instead.
	primary.fail = true
	for i := 0; i < 3; i++ {
		r.IntervalDepthCtx(context.Background(), q)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatal("breaker did not re-open")
	}
	now = now.Add(11 * time.Second)
	if _, depth := r.IntervalDepthCtx(context.Background(), q); depth != 1 {
		t.Fatalf("failed probe should still be served by fallback, got depth %d", depth)
	}
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open again", r.BreakerState())
	}
}

// TestResilientChaosGracefulDegradation is the acceptance chaos test: with a
// deterministic 20% mixed fault plan (error/panic/latency/NaN) injected into
// the primary PI, the resilient chain answers every query with a finite,
// ordered, in-domain interval, never returns an error, and keeps empirical
// coverage at or above the 1−α target (the fallback is calibrated
// conservatively and the fail-safe interval always covers).
func TestResilientChaosGracefulDegradation(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.MustPlan(faultinject.Spec{
		Seed: 11, Error: 0.05, Panic: 0.05, Latency: 0.05, NaN: 0.05,
		Delay: time.Microsecond,
	})
	fallback, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := mustResilient(t, faultinject.WrapPI(base, plan), ResilientConfig{
		Fallbacks:        []PI{fallback},
		FailureThreshold: 1 << 30, // keep the primary in rotation: every fault class must flow
		Metrics:          reg,
	})

	baselineCovered := 0
	for _, lq := range test.Queries {
		iv, err := base.Interval(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(lq.Sel) {
			baselineCovered++
		}
	}

	covered, total := 0, 0
	for _, lq := range test.Queries {
		iv, err := r.Interval(lq.Query)
		if err != nil {
			t.Fatalf("resilient chain returned an error: %v", err)
		}
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
			t.Fatalf("non-finite interval %+v escaped the chain", iv)
		}
		if iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
			t.Fatalf("interval %+v not ordered/in-domain", iv)
		}
		if iv.Contains(lq.Sel) {
			covered++
		}
		total++
	}
	if total != len(test.Queries) {
		t.Fatalf("answered %d of %d queries", total, len(test.Queries))
	}
	// Faults must not cost coverage: every degraded stage (tighter-alpha
	// fallback, full-domain fail-safe) is at least as conservative as the
	// primary, so chain coverage under faults stays at or above the
	// fault-free baseline of the primary alone.
	baseline := float64(baselineCovered) / float64(total)
	if cov := float64(covered) / float64(total); cov < baseline {
		t.Fatalf("coverage %.3f under faults fell below fault-free baseline %.3f", cov, baseline)
	}
	// The plan really exercised every fault class, and recovery saw them.
	for _, k := range []faultinject.Kind{faultinject.Error, faultinject.Panic, faultinject.Latency, faultinject.NaN} {
		if plan.Injected(k) == 0 {
			t.Fatalf("fault plan never injected %v over %d calls", k, plan.Calls())
		}
	}
	name := obs.L("pi", r.Name())
	if got := reg.Counter("cardpi_resilient_recovered_panics_total", "", name).Value(); got != plan.Injected(faultinject.Panic) {
		t.Fatalf("recovered %d panics, plan injected %d", got, plan.Injected(faultinject.Panic))
	}
	served := reg.Counter("cardpi_resilient_served_total", "", name, obs.L("stage", "1")).Value()
	if served == 0 {
		t.Fatal("fallback stage never served despite injected faults")
	}
	if got := reg.Counter("cardpi_resilient_sanitized_total", "", name).Value(); got < plan.Injected(faultinject.NaN) {
		t.Fatalf("sanitized %d results, want at least the %d NaN faults", got, plan.Injected(faultinject.NaN))
	}
}

// TestResilientChaosUnderDeadline drives latency faults longer than the
// request deadline: the chain must still answer (fail-safe) without errors.
func TestResilientChaosUnderDeadline(t *testing.T) {
	plan := faultinject.MustPlan(faultinject.Spec{Seed: 3, Latency: 1, Delay: time.Minute})
	faulty := faultinject.WrapPI(&scriptedPI{iv: Interval{Lo: 0.2, Hi: 0.3}}, plan)
	r := mustResilient(t, faulty, ResilientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	iv, err := r.IntervalCtx(ctx, workload.Query{})
	if err != nil || iv != (Interval{Lo: 0, Hi: 1}) {
		t.Fatalf("iv = %+v err = %v, want failsafe and nil error", iv, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: call took %s", elapsed)
	}
}

// TestResilientFastPathAllocs is the acceptance allocation guard: on the
// fault-free fast path the wrapper must add zero heap allocations per
// Interval call over the wrapped PI's own cost.
func TestResilientFastPathAllocs(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := mustResilient(t, base, ResilientConfig{Fallbacks: []PI{base}})
	q := test.Queries[0].Query
	bare := testing.AllocsPerRun(200, func() {
		if _, err := base.Interval(q); err != nil {
			t.Fatal(err)
		}
	})
	wrapped := testing.AllocsPerRun(200, func() {
		if _, err := r.Interval(q); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > bare {
		t.Fatalf("resilient fast path allocates: %.1f allocs/op vs %.1f bare", wrapped, bare)
	}
}
