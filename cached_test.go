package cardpi

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"cardpi/internal/cache"
	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// countingPI wraps a PI and counts Interval invocations, optionally holding
// each call open on a gate so concurrency tests can pin the flight state.
type countingPI struct {
	inner PI
	calls atomic.Int64
	gate  chan struct{} // nil = unblocked
}

func (c *countingPI) Name() string { return c.inner.Name() }

func (c *countingPI) Interval(q workload.Query) (Interval, error) {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.inner.Interval(q)
}

func newCachedFixture(t *testing.T) (*countingPI, *Cached, *workload.Workload) {
	t.Helper()
	model, _, _, cal, test := fixture(t)
	pi, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingPI{inner: pi}
	cached, err := NewCached(counting, CacheConfig{Entries: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return counting, cached, test
}

// TestCachedBitIdentity: for every test query, the cached wrapper's first
// (miss) and second (hit) answers are bit-identical to the bare PI on the
// query's canonical form — which is the query itself for anything the
// serve parser emits (parser output is canonical; see canonical_test.go).
func TestCachedBitIdentity(t *testing.T) {
	counting, cached, test := newCachedFixture(t)
	for _, lq := range test.Queries {
		want, err := counting.inner.Interval(workload.Canonicalize(lq.Query))
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := cached.Interval(lq.Query)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
				math.Float64bits(got.Hi) != math.Float64bits(want.Hi) {
				t.Fatalf("pass %d: cached %v != uncached %v for %v", pass, got, want, lq.Query.Preds)
			}
		}
	}
	n := int64(len(test.Queries))
	if got := counting.calls.Load(); got != n { // one miss per query, hits free
		t.Fatalf("underlying calls = %d, want %d (hits must not re-invoke)", got, n)
	}
}

// TestCachedCanonicalVariantsShareEntry: syntactic variants of one query
// cost one underlying call and return identical bits.
func TestCachedCanonicalVariantsShareEntry(t *testing.T) {
	counting, cached, _ := newCachedFixture(t)
	eqp := func(col string, v int64) dataset.Predicate {
		return dataset.Predicate{Col: col, Op: dataset.OpEq, Lo: v}
	}
	rngp := func(col string, lo, hi int64) dataset.Predicate {
		return dataset.Predicate{Col: col, Op: dataset.OpRange, Lo: lo, Hi: hi}
	}
	variants := []workload.Query{
		{Preds: []dataset.Predicate{eqp("state", 3), rngp("model_year", 10, 40)}},
		{Preds: []dataset.Predicate{rngp("model_year", 10, 40), eqp("state", 3)}},
		{Preds: []dataset.Predicate{rngp("model_year", 10, 40), rngp("state", 3, 3)}},
		{Preds: []dataset.Predicate{rngp("model_year", 0, 40), rngp("model_year", 10, 90), eqp("state", 3)}},
	}
	var first Interval
	for i, q := range variants {
		iv, err := cached.Interval(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = iv
			continue
		}
		if math.Float64bits(iv.Lo) != math.Float64bits(first.Lo) ||
			math.Float64bits(iv.Hi) != math.Float64bits(first.Hi) {
			t.Fatalf("variant %d returned %v, want %v", i, iv, first)
		}
	}
	if got := counting.calls.Load(); got != 1 {
		t.Fatalf("underlying calls = %d, want 1 (variants must share the entry)", got)
	}
}

// TestCachedSingleflight: N concurrent misses on one key execute exactly
// one underlying Interval call.
func TestCachedSingleflight(t *testing.T) {
	counting, cached, test := newCachedFixture(t)
	counting.gate = make(chan struct{})
	q := test.Queries[0].Query
	const n = 12
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, err := cached.Interval(q); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Wait until the leader is parked on the gate and every follower is
	// provably blocked on its flight, then release — "exactly one
	// underlying call" becomes deterministic, not a scheduling accident.
	k := cache.KeyOf(q)
	for counting.calls.Load() == 0 || cached.c.Waiters(k) != n-1 {
		runtime.Gosched()
	}
	close(counting.gate)
	wg.Wait()
	if got := counting.calls.Load(); got != 1 {
		t.Fatalf("underlying calls = %d, want 1", got)
	}
}

// TestCachedBatchMissCoalescing: a batch probes per element and computes
// only the misses; batch answers are bit-identical to sequential ones.
func TestCachedBatchMissCoalescing(t *testing.T) {
	counting, cached, test := newCachedFixture(t)
	qs := make([]workload.Query, 0, 16)
	for _, lq := range test.Queries[:8] {
		qs = append(qs, lq.Query)
	}
	// Warm the first half through the single path.
	for _, q := range qs[:4] {
		if _, err := cached.Interval(q); err != nil {
			t.Fatal(err)
		}
	}
	warmCalls := counting.calls.Load()
	got, err := cached.IntervalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if miss := counting.calls.Load() - warmCalls; miss != 4 {
		t.Fatalf("batch recomputed %d queries, want the 4 cold ones only", miss)
	}
	for i, q := range qs {
		want, err := counting.inner.Interval(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[i].Lo) != math.Float64bits(want.Lo) ||
			math.Float64bits(got[i].Hi) != math.Float64bits(want.Hi) {
			t.Fatalf("batch element %d: %v != %v", i, got[i], want)
		}
	}
	// A fully warm batch performs no underlying calls and bounded allocs.
	calls := counting.calls.Load()
	if _, err := cached.IntervalBatch(qs); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != calls {
		t.Fatal("warm batch re-invoked the underlying PI")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cached.IntervalBatch(qs); err != nil {
			panic(err)
		}
	})
	// One result-slice allocation; a small constant budget guards against
	// accidental per-element allocations creeping in.
	if allocs > 4 {
		t.Fatalf("warm batch allocates %v times per run; want <= 4", allocs)
	}
}

// TestCachedHitZeroAllocs pins the zero-allocation steady state of a hit.
func TestCachedHitZeroAllocs(t *testing.T) {
	_, cached, test := newCachedFixture(t)
	q := test.Queries[0].Query
	if _, err := cached.Interval(q); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := cached.Interval(q); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("cache hit allocates %v times per run; want 0", n)
	}
}

// TestCachedInvalidate: a bump forces recomputation; entries filled under
// the old epoch are unreachable.
func TestCachedInvalidate(t *testing.T) {
	counting, cached, test := newCachedFixture(t)
	q := test.Queries[0].Query
	if _, err := cached.Interval(q); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Interval(q); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != 1 {
		t.Fatalf("calls = %d before invalidate, want 1", counting.calls.Load())
	}
	cached.Invalidate()
	if _, err := cached.Interval(q); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != 2 {
		t.Fatalf("calls = %d after invalidate, want 2 (must recompute)", counting.calls.Load())
	}
}

// TestCachedMetrics wires a registry through and checks the families move.
func TestCachedMetrics(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	pi, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cached, err := NewCached(pi, CacheConfig{Entries: 128, Metrics: reg, Label: "test"})
	if err != nil {
		t.Fatal(err)
	}
	q := test.Queries[0].Query
	for i := 0; i < 3; i++ {
		if _, err := cached.Interval(q); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	w := &sliceWriter{b: &buf}
	if err := reg.WritePrometheus(w); err != nil {
		t.Fatal(err)
	}
	out := string(buf)
	for _, want := range []string{
		`cardpi_cache_hits_total{cache="test"} 2`,
		`cardpi_cache_misses_total{cache="test"} 1`,
		`cardpi_cache_size{cache="test"} 1`,
	} {
		if !containsLine(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

func containsLine(s, line string) bool {
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if s[:i] == line {
			return true
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return false
}
