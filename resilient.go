package cardpi

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// BreakerState is one of the three circuit-breaker states guarding the
// primary stage of a Resilient chain. The zero value is BreakerClosed.
type BreakerState int32

// The circuit-breaker state machine: Closed (healthy, all traffic reaches
// the primary) → Open after FailureThreshold consecutive failures (the
// primary is skipped entirely) → HalfOpen once OpenFor has elapsed (up to
// HalfOpenProbes trial requests reach the primary) → Closed on a successful
// probe, or back to Open on a failed one. See RELIABILITY.md for the full
// transition diagram.
const (
	// BreakerClosed is the healthy state: every request reaches the primary.
	BreakerClosed BreakerState = iota
	// BreakerOpen is the tripped state: the primary is skipped and requests
	// go straight to the fallback chain until OpenFor elapses.
	BreakerOpen
	// BreakerHalfOpen is the probing state: a bounded number of trial
	// requests reach the primary to test whether it has recovered.
	BreakerHalfOpen
)

// String renders the state for logs and metrics documentation.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is the mutex-guarded circuit-breaker state machine. All methods
// are safe for concurrent use and allocation-free.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive primary failures while closed
	probes    int // in-flight trial requests while half-open
	openedAt  time.Time
	threshold int
	openFor   time.Duration
	maxProbes int
	now       func() time.Time

	toOpen, toHalfOpen, toClosed *obs.Counter
}

// allow reports whether the primary stage may be attempted, performing the
// open → half-open transition when the cool-down has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		b.toHalfOpen.Inc()
		fallthrough
	default: // BreakerHalfOpen
		if b.probes < b.maxProbes {
			b.probes++
			return true
		}
		return false
	}
}

// onSuccess records a successful primary attempt: it resets the consecutive
// failure count and closes the breaker after a successful half-open probe.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probes = 0
		b.toClosed.Inc()
	}
}

// onFailure records a failed primary attempt (error, panic, non-finite
// result, or deadline expiry during the attempt) and trips the breaker when
// the consecutive-failure threshold is reached or a half-open probe fails.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.toOpen.Inc()
		}
	case BreakerHalfOpen:
		b.probes = 0
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.toOpen.Inc()
	}
}

// current returns the state for the gauge and accessors.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ResilientConfig configures NewResilient. The zero value is usable: no
// fallbacks (the chain is primary → fail-safe), a 5-failure threshold, a 5 s
// open period, one half-open probe, and metrics on a private registry.
type ResilientConfig struct {
	// Fallbacks is the ordered fallback chain consulted after the primary
	// fails or the breaker is open — typically a conservative traditional
	// estimator (histogram or sampling) wrapped at a stricter alpha. The
	// implicit final stage is the fail-safe full-domain interval [0, 1],
	// which never fails.
	Fallbacks []PI
	// FailureThreshold is the number of consecutive primary failures that
	// trips the breaker open (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker stays open before admitting half-open
	// probes (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes is the number of concurrent trial requests admitted to
	// the primary while half-open (default 1).
	HalfOpenProbes int
	// Metrics, when non-nil, registers the cardpi_resilient_* families on
	// the given registry, labeled with the chain's name; nil keeps the
	// counters on a private registry (recorded but not exported).
	Metrics *obs.Registry
	// Clock overrides the breaker's time source for deterministic tests
	// (default time.Now).
	Clock func() time.Time
}

// Resilient is a fault-tolerant PI decorator: it guarantees that every call
// returns a finite, ordered interval inside the selectivity domain [0, 1]
// and a nil error, no matter how the wrapped stages misbehave. Four
// mechanisms compose:
//
//   - panic recovery around every stage (a panicking model becomes a stage
//     failure, not a crashed request);
//   - NaN/±Inf sanitization — a stage returning a non-finite endpoint is
//     treated as failed, and every served interval is normalised by Clip;
//   - an ordered fallback chain (primary → Fallbacks... → the fail-safe
//     full-domain interval [0, 1], which always covers);
//   - a circuit breaker on the primary stage keyed on consecutive
//     errors/timeouts, so a persistently failing model is skipped instead
//     of paying its latency on every request.
//
// Deadlines: IntervalCtx checks the context between stages and forwards it
// to context-aware stages; once the deadline passes, remaining model stages
// are skipped and the fail-safe interval is returned immediately. Intervals
// are in normalised selectivity units. Safe for concurrent use whenever the
// wrapped stages are; the fault-free fast path adds zero heap allocations
// per call (see TestResilientFastPathAllocs).
type Resilient struct {
	stages []PI // stages[0] is the primary
	br     *breaker

	calls     *obs.Counter
	servedFS  *obs.Counter
	skipped   *obs.Counter
	panics    *obs.Counter
	sanitized *obs.Counter
	served    []*obs.Counter // per stage
	failed    []*obs.Counter // per stage
}

// NewResilient wraps primary with the reliability layer. The primary plus
// cfg.Fallbacks form the ordered stage chain; the fail-safe [0, 1] interval
// is always appended implicitly and cannot fail.
func NewResilient(primary PI, cfg ResilientConfig) (*Resilient, error) {
	if primary == nil {
		return nil, fmt.Errorf("cardpi: resilient wrapper needs a primary PI")
	}
	for i, fb := range cfg.Fallbacks {
		if fb == nil {
			return nil, fmt.Errorf("cardpi: fallback stage %d is nil", i+1)
		}
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	stages := append([]PI{primary}, cfg.Fallbacks...)
	name := "resilient/" + primary.Name()
	pi := obs.L("pi", name)
	r := &Resilient{
		stages: stages,
		calls: reg.Counter("cardpi_resilient_calls_total",
			"Interval calls entering the resilient chain.", pi),
		servedFS: reg.Counter("cardpi_resilient_served_total",
			"Requests answered per stage; the failsafe stage is the full-domain interval.",
			pi, obs.L("stage", "failsafe")),
		skipped: reg.Counter("cardpi_resilient_breaker_skips_total",
			"Requests that bypassed the primary because the breaker was open.", pi),
		panics: reg.Counter("cardpi_resilient_recovered_panics_total",
			"Panics recovered from chain stages and converted into stage failures.", pi),
		sanitized: reg.Counter("cardpi_resilient_sanitized_total",
			"Stage results with NaN/Inf or inverted endpoints that required sanitization.", pi),
	}
	r.br = &breaker{
		threshold: cfg.FailureThreshold,
		openFor:   cfg.OpenFor,
		maxProbes: cfg.HalfOpenProbes,
		now:       cfg.Clock,
		toOpen: reg.Counter("cardpi_resilient_breaker_transitions_total",
			"Breaker state transitions, by target state.", pi, obs.L("to", "open")),
		toHalfOpen: reg.Counter("cardpi_resilient_breaker_transitions_total",
			"Breaker state transitions, by target state.", pi, obs.L("to", "half_open")),
		toClosed: reg.Counter("cardpi_resilient_breaker_transitions_total",
			"Breaker state transitions, by target state.", pi, obs.L("to", "closed")),
	}
	reg.GaugeFunc("cardpi_resilient_breaker_state",
		"Current breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 { return float64(r.br.current()) }, pi)
	for i := range stages {
		stage := obs.L("stage", strconv.Itoa(i))
		r.served = append(r.served, reg.Counter("cardpi_resilient_served_total",
			"Requests answered per stage; the failsafe stage is the full-domain interval.", pi, stage))
		r.failed = append(r.failed, reg.Counter("cardpi_resilient_stage_failures_total",
			"Stage attempts that failed (error, panic, timeout, or non-finite interval).", pi, stage))
	}
	return r, nil
}

// Name implements PI; the chain reports as "resilient/<primary name>".
func (r *Resilient) Name() string { return "resilient/" + r.stages[0].Name() }

// Primary returns the chain's primary stage (the wrapped learned PI).
func (r *Resilient) Primary() PI { return r.stages[0] }

// BreakerState returns the current circuit-breaker state. Safe for
// concurrent use.
func (r *Resilient) BreakerState() BreakerState { return r.br.current() }

// Interval implements PI: IntervalCtx without a deadline. The returned
// interval is always finite, ordered, and inside [0, 1]; the error is
// always nil (failures degrade through the fallback chain instead).
func (r *Resilient) Interval(q workload.Query) (Interval, error) {
	iv, _ := r.IntervalDepthCtx(context.Background(), q)
	return iv, nil
}

// IntervalCtx implements ContextPI. Unlike ordinary ContextPIs it never
// returns an error — a dead context short-circuits to the fail-safe
// full-domain interval so the caller still gets a valid (if trivial)
// answer. Units are normalised selectivity.
func (r *Resilient) IntervalCtx(ctx context.Context, q workload.Query) (Interval, error) {
	iv, _ := r.IntervalDepthCtx(ctx, q)
	return iv, nil
}

// IntervalDepthCtx answers the query and reports which stage served it:
// depth 0 is the primary, 1..len(Fallbacks) the fallback stages, and
// FailsafeDepth(r) (== 1+len(Fallbacks)) the fail-safe full-domain interval.
// The interval is always finite, ordered, and inside [0, 1]. Safe for
// concurrent use; the fault-free fast path adds zero heap allocations.
func (r *Resilient) IntervalDepthCtx(ctx context.Context, q workload.Query) (Interval, int) {
	r.calls.Inc()
	for i, st := range r.stages {
		if ctx.Err() != nil {
			break // deadline gone: no time for more model stages
		}
		if i == 0 && !r.br.allow() {
			r.skipped.Inc()
			continue
		}
		iv, err := r.tryStage(ctx, st, q)
		ok := err == nil && finiteInterval(iv)
		if err == nil && !ok {
			r.sanitized.Inc() // non-finite endpoints: demote to stage failure
		}
		if i == 0 {
			if ok {
				r.br.onSuccess()
			} else {
				r.br.onFailure()
			}
		}
		if ok {
			if iv.Lo > iv.Hi {
				r.sanitized.Inc() // inverted finite bounds: Clip normalises
			}
			r.served[i].Inc()
			return clip(iv), i
		}
		r.failed[i].Inc()
	}
	r.servedFS.Inc()
	return Interval{Lo: 0, Hi: 1}, len(r.stages)
}

// FailsafeDepth returns the depth IntervalDepthCtx reports when the
// fail-safe full-domain interval answered (one past the last fallback).
func (r *Resilient) FailsafeDepth() int { return len(r.stages) }

// IntervalBatch implements BatchPI with the chain's guarantees intact:
// every returned interval is finite, ordered, and inside [0, 1], and the
// error is always nil — per-query failures degrade through the fallback
// chain exactly as in the sequential path.
func (r *Resilient) IntervalBatch(qs []workload.Query) ([]Interval, error) {
	ivs, _ := r.IntervalBatchDepthCtx(context.Background(), qs)
	return ivs, nil
}

// IntervalBatchDepthCtx answers the whole batch and reports which stage
// served each query (same depth convention as IntervalDepthCtx). Each stage
// sees one batched call covering the queries every earlier stage failed to
// serve; a query whose row comes back non-finite falls through to the next
// stage individually, so one diverged row does not drag its batch-mates down
// the chain. The breaker records one event per batch primary attempt —
// success only when the call returned no error and every row was finite — so
// a poisoned batch trips it at the same rate as a poisoned single query. The
// context is checked between stages: once it is done, remaining queries go
// straight to the fail-safe full-domain interval.
func (r *Resilient) IntervalBatchDepthCtx(ctx context.Context, qs []workload.Query) ([]Interval, []int) {
	n := len(qs)
	r.calls.Add(uint64(n))
	out := make([]Interval, n)
	depth := make([]int, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var sub []workload.Query
	for si, st := range r.stages {
		if len(remaining) == 0 {
			break
		}
		if ctx.Err() != nil {
			break // deadline gone: no time for more model stages
		}
		if si == 0 && !r.br.allow() {
			r.skipped.Add(uint64(len(remaining)))
			continue
		}
		// The first attempted stage usually still owns the whole batch and
		// can take qs directly; later stages gather their leftovers.
		batch := qs
		if len(remaining) != n {
			sub = sub[:0]
			for _, i := range remaining {
				sub = append(sub, qs[i])
			}
			batch = sub
		}
		ivs, err := r.tryStageBatch(st, batch)
		allOK := err == nil && len(ivs) == len(batch)
		if allOK {
			for _, iv := range ivs {
				if !finiteInterval(iv) {
					allOK = false
					break
				}
			}
		}
		if si == 0 {
			if allOK {
				r.br.onSuccess()
			} else {
				r.br.onFailure()
			}
		}
		if err != nil || len(ivs) != len(batch) {
			r.failed[si].Add(uint64(len(remaining)))
			continue
		}
		nr := 0
		for j, i := range remaining {
			iv := ivs[j]
			if !finiteInterval(iv) {
				r.sanitized.Inc() // non-finite endpoints: demote to stage failure
				r.failed[si].Inc()
				remaining[nr] = i
				nr++
				continue
			}
			if iv.Lo > iv.Hi {
				r.sanitized.Inc() // inverted finite bounds: Clip normalises
			}
			r.served[si].Inc()
			out[i] = clip(iv)
			depth[i] = si
		}
		remaining = remaining[:nr]
	}
	for _, i := range remaining {
		out[i] = Interval{Lo: 0, Hi: 1}
		depth[i] = len(r.stages)
		r.servedFS.Inc()
	}
	return out, depth
}

// tryStageBatch runs one stage's whole-batch attempt under panic recovery,
// mirroring tryStage.
func (r *Resilient) tryStageBatch(pi PI, qs []workload.Query) (ivs []Interval, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Inc()
			err = fmt.Errorf("cardpi: recovered panic in %s: %v", pi.Name(), p)
		}
	}()
	return IntervalBatch(pi, qs)
}

// tryStage runs one stage under panic recovery: a panicking stage becomes a
// stage failure instead of unwinding into the caller.
func (r *Resilient) tryStage(ctx context.Context, pi PI, q workload.Query) (iv Interval, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Inc()
			err = fmt.Errorf("cardpi: recovered panic in %s: %v", pi.Name(), p)
		}
	}()
	return IntervalCtx(ctx, pi, q)
}

// finiteInterval reports whether both endpoints are finite (not NaN, not
// ±Inf). Inverted-but-finite bounds are acceptable here — Clip normalises
// them — but non-finite endpoints mean the stage's model diverged and its
// answer carries no information.
func finiteInterval(iv Interval) bool {
	return !math.IsNaN(iv.Lo) && !math.IsInf(iv.Lo, 0) &&
		!math.IsNaN(iv.Hi) && !math.IsInf(iv.Hi, 0)
}
