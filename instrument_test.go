package cardpi

import (
	"errors"
	"strings"
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/histogram"
	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// flakyPI is a minimal PI returning a fixed interval, failing on demand.
type flakyPI struct{ fail bool }

func (f *flakyPI) Name() string { return "flaky/unit" }
func (f *flakyPI) Interval(workload.Query) (Interval, error) {
	if f.fail {
		return Interval{}, errors.New("boom")
	}
	return Interval{Lo: 0.1, Hi: 0.3}, nil
}

func TestInstrumentRecordsCallsErrorsLatency(t *testing.T) {
	reg := obs.NewRegistry()
	fp := &flakyPI{}
	in := Instrument(fp, reg)
	if in.Name() != "flaky/unit" {
		t.Fatalf("name = %q, want the wrapped method's name", in.Name())
	}
	if in.Unwrap() != PI(fp) {
		t.Fatal("Unwrap should return the inner PI")
	}
	var q workload.Query
	for i := 0; i < 5; i++ {
		if _, err := in.Interval(q); err != nil {
			t.Fatal(err)
		}
	}
	fp.fail = true
	if _, err := in.Interval(q); err == nil {
		t.Fatal("expected propagated error")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cardpi_pi_calls_total{method="flaky/unit"} 6`,
		`cardpi_pi_errors_total{method="flaky/unit"} 1`,
		`cardpi_pi_latency_seconds_count{method="flaky/unit"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

func TestInstrumentIsIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	in := Instrument(&flakyPI{}, reg)
	if again := Instrument(in, reg); again != in {
		t.Fatal("instrumenting an Instrumented PI must not double-wrap")
	}
}

func TestAdaptiveMetricsExported(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	reg := obs.NewRegistry()
	a, err := NewAdaptive(model, cal.Subset(100), conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 7, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range test.Queries[:200] {
		if _, err := a.Interval(lq.Query); err != nil {
			t.Fatal(err)
		}
		a.Observe(lq.Query, lq.Sel)
	}
	cov := a.RollingCoverage()
	if cov < 0.8 || cov > 1 {
		t.Fatalf("rolling coverage %v outside sane range for an exchangeable stream", cov)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cardpi_adaptive_observations_total{model="histogram"} 300`, // 100 seed + 200 stream
		`cardpi_adaptive_drift_alarms_total{model="histogram"} 0`,
		`cardpi_adaptive_coverage{model="histogram"}`,
		`cardpi_adaptive_width_mean{model="histogram"}`,
		`cardpi_adaptive_width_p99{model="histogram"}`,
		`cardpi_adaptive_calibration_size{model="histogram"} 300`,
		`cardpi_adaptive_drift_statistic{model="histogram"}`,
		`cardpi_adaptive_drift_threshold{model="histogram"}`,
		`cardpi_adaptive_interval_width_count{model="histogram"} 200`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

func TestAdaptiveDriftAlarmCounterEdgeTriggered(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	reg := obs.NewRegistry()
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 2, Significance: 0.01, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Feed wildly wrong truths: the martingale must cross the Ville
	// threshold, and the alarm counter must count the transition once, not
	// once per subsequent observation.
	for _, lq := range test.Queries {
		a.Observe(lq.Query, 1-lq.Sel)
	}
	if !a.Drifted() {
		t.Fatalf("drift not detected; stat %v", a.DriftStatistic())
	}
	alarms := reg.Counter("cardpi_adaptive_drift_alarms_total", "", obs.L("model", model.Name()))
	if alarms.Value() != 1 {
		t.Fatalf("drift alarms = %d, want exactly 1 (edge-triggered)", alarms.Value())
	}
}

func TestEvaluatePublishesMetrics(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	pi, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default().Counter("cardpi_evaluate_runs_total",
		"", obs.L("method", pi.Name())).Value()
	ev, err := Evaluate(pi, test)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	if got := reg.Counter("cardpi_evaluate_runs_total", "", obs.L("method", pi.Name())).Value(); got != before+1 {
		t.Fatalf("evaluate runs counter = %d, want %d", got, before+1)
	}
	if got := reg.Gauge("cardpi_evaluate_coverage", "", obs.L("method", pi.Name())).Value(); got != ev.Coverage {
		t.Fatalf("coverage gauge = %v, want %v", got, ev.Coverage)
	}
	if got := reg.Gauge("cardpi_evaluate_width_mean", "", obs.L("method", pi.Name())).Value(); got != ev.Widths.Mean {
		t.Fatalf("width gauge = %v, want %v", got, ev.Widths.Mean)
	}
	if reg.Histogram("cardpi_pi_latency_seconds", "", obs.LatencyBuckets,
		obs.L("method", pi.Name())).Count() < uint64(len(test.Queries)) {
		t.Fatal("latency histogram did not receive per-query observations")
	}
}

// TestIntervalZeroAllocWithMetrics is the acceptance check for the
// observability layer: metric recording must add zero heap allocations per
// Interval call, both for an Instrumented static wrapper and for Adaptive
// with live telemetry.
func TestIntervalZeroAllocWithMetrics(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	q := test.Queries[0].Query

	bare, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(200, func() {
		if _, err := bare.Interval(q); err != nil {
			t.Fatal(err)
		}
	})
	in := Instrument(bare, obs.NewRegistry())
	instrumented := testing.AllocsPerRun(200, func() {
		if _, err := in.Interval(q); err != nil {
			t.Fatal(err)
		}
	})
	if instrumented != base {
		t.Fatalf("Instrument added %v allocs/call (bare %v, instrumented %v)", instrumented-base, base, instrumented)
	}

	// Adaptive: compare a metrics-free baseline with full telemetry. The
	// estimator itself may allocate (the histogram model allocates once per
	// EstimateSelectivity); the telemetry must add nothing on top.
	plain, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainAllocs := testing.AllocsPerRun(200, func() {
		if _, err := plain.Interval(q); err != nil {
			t.Fatal(err)
		}
	})
	a, err := NewAdaptive(model, cal, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := a.Interval(q); err != nil {
			t.Fatal(err)
		}
	}); n != plainAllocs {
		t.Fatalf("Adaptive telemetry added %v allocs/call (plain %v, with metrics %v)", n-plainAllocs, plainAllocs, n)
	}
}

// benchFixture builds the shared benchmark substrate: a histogram model
// with a calibrated split-conformal wrapper and one probe query.
func benchFixture(b *testing.B) (PI, *Adaptive, workload.Query) {
	b.Helper()
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 5000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 600, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	model := histogram.NewSingle(tab, histogram.Config{})
	pi, err := WrapSplitCP(model, wl, conformal.ResidualScore{}, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAdaptive(model, wl, conformal.ResidualScore{},
		AdaptiveConfig{Alpha: 0.1, Seed: 1, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	return pi, a, wl.Queries[0].Query
}

// BenchmarkIntervalBare is the baseline for BenchmarkInstrumentedInterval:
// the same wrapper and query without metric recording. Compare allocs/op —
// the instrumented numbers must match these exactly.
func BenchmarkIntervalBare(b *testing.B) {
	pi, _, q := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pi.Interval(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedInterval proves that metric recording (call counter,
// error counter, latency histogram) adds zero allocations to the Interval
// hot path.
func BenchmarkInstrumentedInterval(b *testing.B) {
	pi, _, q := benchFixture(b)
	in := Instrument(pi, obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Interval(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveIntervalWithMetrics exercises the adaptive hot path with
// the full telemetry (width ring + histogram) enabled.
func BenchmarkAdaptiveIntervalWithMetrics(b *testing.B) {
	_, a, q := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Interval(q); err != nil {
			b.Fatal(err)
		}
	}
}
