package cardpi

import (
	"context"
	"time"

	"cardpi/internal/obs"
	"cardpi/internal/workload"
)

// Instrumented decorates a PI with observability: per-method call and error
// counters and a latency histogram, published on an obs.Registry under the
// metric families
//
//	cardpi_pi_calls_total{method=...}
//	cardpi_pi_errors_total{method=...}
//	cardpi_pi_latency_seconds{method=...}   (histogram)
//
// where method is the wrapped PI's Name() (e.g. "s-cp/spn"). Recording is
// allocation-free — three atomic operations around the inner Interval call —
// so wrapping does not disturb the hot path (see BenchmarkInstrumentedInterval).
// Instrumented is safe for concurrent use whenever the wrapped PI is; every
// PI in this package is safe for concurrent Interval calls.
type Instrumented struct {
	pi    PI
	calls *obs.Counter
	errs  *obs.Counter
	lat   *obs.Histogram
}

// Instrument wraps pi with metric recording on reg (obs.Default() is the
// registry `cardpi serve` exposes). The metric instruments are resolved once
// here, never on the per-query path. Wrapping an already-Instrumented PI
// returns it unchanged rather than double-counting.
func Instrument(pi PI, reg *obs.Registry) *Instrumented {
	if in, ok := pi.(*Instrumented); ok {
		return in
	}
	method := obs.L("method", pi.Name())
	return &Instrumented{
		pi:    pi,
		calls: reg.Counter("cardpi_pi_calls_total", "PI.Interval calls by method.", method),
		errs:  reg.Counter("cardpi_pi_errors_total", "PI.Interval calls that returned an error, by method.", method),
		lat: reg.Histogram("cardpi_pi_latency_seconds",
			"Per-call PI.Interval latency in seconds, by method.", obs.LatencyBuckets, method),
	}
}

// Name implements PI; it reports the wrapped method's name so instrumented
// and bare wrappers are interchangeable in reports.
func (in *Instrumented) Name() string { return in.pi.Name() }

// Interval implements PI: it delegates to the wrapped method and records
// the call count, latency, and error count. Units of the returned interval
// are unchanged (normalised selectivity in [0, 1]).
func (in *Instrumented) Interval(q workload.Query) (Interval, error) {
	start := time.Now()
	iv, err := in.pi.Interval(q)
	in.lat.Observe(time.Since(start).Seconds())
	in.calls.Inc()
	if err != nil {
		in.errs.Inc()
	}
	return iv, err
}

// IntervalCtx implements ContextPI: it forwards the context to the wrapped
// PI (via the IntervalCtx shim, so plain PIs keep working) and records the
// same call/latency/error metrics as Interval. Cancellations and deadline
// expiries count as errors.
func (in *Instrumented) IntervalCtx(ctx context.Context, q workload.Query) (Interval, error) {
	start := time.Now()
	iv, err := IntervalCtx(ctx, in.pi, q)
	in.lat.Observe(time.Since(start).Seconds())
	in.calls.Inc()
	if err != nil {
		in.errs.Inc()
	}
	return iv, err
}

// IntervalBatch implements BatchPI: it forwards the batch to the wrapped
// PI (through the IntervalBatch package function, so non-batch PIs still
// work) and records the same metrics a sequential loop would — one call
// count per query and the batch's amortised per-query latency into the
// histogram, keeping latency quantiles comparable across serving modes.
func (in *Instrumented) IntervalBatch(qs []workload.Query) ([]Interval, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	start := time.Now()
	ivs, err := IntervalBatch(in.pi, qs)
	perQuery := time.Since(start).Seconds() / float64(len(qs))
	for range qs {
		in.lat.Observe(perQuery)
		in.calls.Inc()
	}
	if err != nil {
		in.errs.Inc()
	}
	return ivs, err
}

// Unwrap returns the underlying PI.
func (in *Instrumented) Unwrap() PI { return in.pi }
