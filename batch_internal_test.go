package cardpi

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/dataset"
	"cardpi/internal/estimator"
	"cardpi/internal/gbm"
	"cardpi/internal/histogram"
	"cardpi/internal/mscn"
	"cardpi/internal/obs"
	"cardpi/internal/par"
	"cardpi/internal/workload"
)

// queriesOf strips the labels off a workload, yielding the plain query slice
// the batch API takes.
func queriesOf(wl *workload.Workload) []workload.Query {
	qs := make([]workload.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		qs[i] = lq.Query
	}
	return qs
}

// seqIntervals is the scalar reference path for the in-package batch tests.
func seqIntervals(t *testing.T, pi PI, qs []workload.Query) []Interval {
	t.Helper()
	out := make([]Interval, len(qs))
	for i, q := range qs {
		iv, err := pi.Interval(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = iv
	}
	return out
}

// sameBits fails unless got matches want exactly (Float64bits on both ends).
func sameBits(t *testing.T, want, got []Interval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i].Lo) != math.Float64bits(got[i].Lo) ||
			math.Float64bits(want[i].Hi) != math.Float64bits(got[i].Hi) {
			t.Fatalf("query %d: batch %+v differs from sequential %+v", i, got[i], want[i])
		}
	}
}

// TestIntervalBatchWeighted covers the weighted-CP wrapper, which the
// pipeline combos test cannot build (it needs a shifted-workload sample):
// the presorted O(log n) threshold search must reproduce the scalar path
// exactly, including its single-featurization likelihood ratio.
func TestIntervalBatchWeighted(t *testing.T) {
	model, ff, _, cal, test := fixture(t)
	pi, err := WrapWeighted(model, cal, test, ff, conformal.ResidualScore{}, 0.1,
		gbm.Config{NumTrees: 30, MaxDepth: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(test)
	want := seqIntervals(t, pi, qs)
	got, err := pi.IntervalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// TestIntervalBatchJackknife covers the CV+/jackknife wrapper, also absent
// from the pipeline registry.
func TestIntervalBatchJackknife(t *testing.T) {
	model, _, train, _, test := fixture(t)
	tf := func(wl *workload.Workload, seed int64) (Estimator, error) { return model, nil }
	pi, err := WrapJackknifeCV(tf, train, 10, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(test)
	want := seqIntervals(t, pi, qs)
	got, err := pi.IntervalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// seqOnlyPI hides the embedded PI's batch method behind an interface that
// only promotes the scalar API, forcing the package-level dispatcher onto
// its generic worker-pool fallback.
type seqOnlyPI struct{ PI }

// TestIntervalBatchGenericFallback proves the fallback path of the
// package-level IntervalBatch: a PI without a native batch method still gets
// bit-identical batched answers.
func TestIntervalBatchGenericFallback(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := seqOnlyPI{base}
	if _, ok := interface{}(wrapped).(BatchPI); ok {
		t.Fatal("seqOnlyPI must not implement BatchPI")
	}
	qs := queriesOf(test)
	want := seqIntervals(t, base, qs)
	got, err := IntervalBatch(wrapped, qs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// TestIntervalBatchInstrumented asserts the instrumented wrapper forwards to
// the native batch path unchanged while still counting every query.
func TestIntervalBatchInstrumented(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	in := Instrument(base, obs.NewRegistry())
	qs := queriesOf(test)
	want := seqIntervals(t, base, qs)
	got, err := in.IntervalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// TestIntervalBatchResilient asserts the fault-tolerant wrapper's batch path
// serves every query from the primary on the healthy path, bit-identical to
// the scalar route, with depth 0 throughout.
func TestIntervalBatchResilient(t *testing.T) {
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(base, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(test)
	want := seqIntervals(t, base, qs)
	got, err := r.IntervalBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
	ivs, depths := r.IntervalBatchDepthCtx(context.Background(), qs)
	sameBits(t, want, ivs)
	for i, d := range depths {
		if d != 0 {
			t.Fatalf("query %d served at depth %d, want primary", i, d)
		}
	}
}

// TestIntervalBatchConcurrent hammers one shared wrapper from several
// goroutines — the batch path must be safe for concurrent use (the server
// fans requests over it) and stay bit-identical under contention. The name
// keeps it inside the CI race-detector run.
func TestIntervalBatchConcurrent(t *testing.T) {
	// Run the row-block kernels at full fan-out so the race detector sees the
	// worker goroutines, not the W=1 inline path.
	par.SetBatchWorkers(runtime.NumCPU())
	defer par.SetBatchWorkers(0)
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(test)
	want := seqIntervals(t, base, qs)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				got, err := base.IntervalBatch(qs)
				if err != nil {
					t.Errorf("IntervalBatch: %v", err)
					return
				}
				for i := range want {
					if math.Float64bits(want[i].Lo) != math.Float64bits(got[i].Lo) ||
						math.Float64bits(want[i].Hi) != math.Float64bits(got[i].Hi) {
						t.Errorf("query %d: concurrent batch diverged", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestIntervalBatchAllocs is the steady-state allocation guard: once warm, a
// 256-query IntervalBatch performs a constant number of heap allocations
// (the two result slices), i.e. zero allocations per query. The guard
// compares a large batch against a small one so the bound is about scaling,
// not about the fixed per-call cost.
func TestIntervalBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	// Pin one worker: parallel fan-out legitimately allocates O(workers)
	// goroutine stacks per batch, which would make the guard depend on the
	// machine's CPU count instead of the per-query scaling it polices.
	par.SetBatchWorkers(1)
	defer par.SetBatchWorkers(0)
	model, _, _, cal, test := fixture(t)
	base, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(test)[:256]
	assertConstantBatchAllocs(t, base, qs)
}

// TestIntervalBatchAllocsMSCN repeats the steady-state guard over the MSCN
// network path: the pooled batch scratch must absorb featurization and the
// matrix forward passes with no per-query heap traffic.
func TestIntervalBatchAllocsMSCN(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	par.SetBatchWorkers(1)
	defer par.SetBatchWorkers(0)
	tab, err := dataset.GenerateCensus(dataset.GenConfig{Rows: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(3, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mscn.Train(mscn.NewSingleFeaturizer(tab), parts[0], mscn.Config{Epochs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base, err := WrapSplitCP(m, parts[1], conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesOf(parts[1])[:250]
	assertConstantBatchAllocs(t, base, qs)
}

// assertConstantBatchAllocs measures warm per-batch allocations at two batch
// sizes and fails if the count grows with the batch, or if the fixed
// per-call overhead exceeds a handful of slice headers.
func assertConstantBatchAllocs(t *testing.T, pi BatchPI, qs []workload.Query) {
	t.Helper()
	small, big := qs[:16], qs
	// Warm pooled scratch on the largest shape first.
	if _, err := pi.IntervalBatch(big); err != nil {
		t.Fatal(err)
	}
	allocsSmall := testing.AllocsPerRun(20, func() {
		if _, err := pi.IntervalBatch(small); err != nil {
			t.Fatal(err)
		}
	})
	allocsBig := testing.AllocsPerRun(20, func() {
		if _, err := pi.IntervalBatch(big); err != nil {
			t.Fatal(err)
		}
	})
	if allocsBig > allocsSmall+2 {
		t.Fatalf("allocations scale with batch size: %.1f at n=%d vs %.1f at n=%d",
			allocsBig, len(big), allocsSmall, len(small))
	}
	if allocsBig > 8 {
		t.Fatalf("batch call allocates %.1f times, want a constant handful", allocsBig)
	}
}

// TestIntervalBatchAllocsLocalized pins the localized-CP regression fix: the
// batch path's per-row neighbour probes, local-score quantiles, and
// featurisation all draw from pooled scratch, so a warm 256-query batch
// allocates the same constant handful as a 16-query one — not one
// feature vector or kNN buffer per row.
func TestIntervalBatchAllocsLocalized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	par.SetBatchWorkers(1)
	defer par.SetBatchWorkers(0)
	tab, err := dataset.GenerateDMV(dataset.GenConfig{Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(tab, workload.Config{Count: 900, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := wl.Split(2, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	model := histogram.NewSingle(tab, histogram.Config{})
	feat := estimator.NewFeaturizer(tab)
	lcp, err := WrapLocalized(model, parts[0], feat.Featurize, conformal.ResidualScore{}, 0.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	lcp.SetAppendFeatures(feat.AppendFeaturize)
	qs := queriesOf(parts[1])[:256]
	assertConstantBatchAllocs(t, lcp, qs)
}
