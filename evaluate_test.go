package cardpi

import (
	"testing"

	"cardpi/internal/conformal"
	"cardpi/internal/workload"
)

func TestEvaluateValidation(t *testing.T) {
	model, _, _, cal, _ := fixture(t)
	pi, err := WrapSplitCP(model, cal, conformal.ResidualScore{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(pi, nil); err == nil {
		t.Fatal("nil workload should fail")
	}
	if _, err := Evaluate(pi, &workload.Workload{}); err == nil {
		t.Fatal("empty workload should fail")
	}
}

func TestWrapLocalizedCoverageAndAdaptivity(t *testing.T) {
	model, ff, _, cal, test := fixture(t)
	pi, err := WrapLocalized(model, cal, ff, conformal.ResidualScore{}, 0.1, 80)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Name() != "lcp/histogram" {
		t.Fatalf("name = %s", pi.Name())
	}
	ev, err := Evaluate(pi, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Coverage < 0.84 {
		t.Fatalf("LCP coverage %v < 0.84", ev.Coverage)
	}
	// Local calibration must produce varying widths.
	if ev.Widths.P99 <= ev.Widths.Median {
		t.Fatalf("LCP widths look constant: median %v p99 %v", ev.Widths.Median, ev.Widths.P99)
	}
	for _, iv := range ev.Intervals {
		if iv.Lo < 0 || iv.Hi > 1 {
			t.Fatalf("interval %+v escapes [0,1]", iv)
		}
	}
}

func TestWrapLocalizedValidation(t *testing.T) {
	model, ff, _, _, _ := fixture(t)
	if _, err := WrapLocalized(model, nil, ff, conformal.ResidualScore{}, 0.1, 10); err == nil {
		t.Fatal("nil calibration should fail")
	}
}
